#include "bench_util/drivers.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/rng.h"
#include "sim/index_model.h"

namespace eris::bench {

using core::Engine;
using core::EngineOptions;
using core::ExecutionMode;
using routing::KeyValue;
using storage::Key;
using storage::Value;

uint32_t KeyBitsFor(uint64_t keys, uint32_t prefix_bits) {
  uint32_t bits = static_cast<uint32_t>(std::max(1, Log2Ceil(keys)));
  return std::max(bits, prefix_bits);
}

EngineOptions SimEngineOptions(const MachineSpec& machine, double scale) {
  EngineOptions opts;
  opts.topology = machine.topology;
  opts.mode = ExecutionMode::kSimulated;
  opts.sim.enabled = true;
  opts.sim.llc_bytes_per_node = machine.llc_bytes_per_node / scale;
  return opts;
}

namespace {

/// Materialized key count after scaling (floored at a workable minimum).
uint64_t ScaledKeys(const PointOpsConfig& cfg) {
  return std::max<uint64_t>(
      4096, static_cast<uint64_t>(cfg.num_keys / cfg.scale));
}

}  // namespace

RunResult RunErisPointOps(const PointOpsConfig& cfg) {
  const uint64_t n = ScaledKeys(cfg);
  const uint32_t key_bits = KeyBitsFor(n, cfg.prefix_bits);
  EngineOptions opts = SimEngineOptions(cfg.machine, cfg.scale);
  Engine engine(opts);
  storage::ObjectId idx = engine.CreateIndex(
      "bench", n, {.prefix_bits = cfg.prefix_bits, .key_bits = key_bits});
  engine.Start();
  // One client per node: command generation is spread over the machine,
  // as in the paper's benchmark setup.
  std::vector<std::unique_ptr<Engine::Session>> sessions;
  for (numa::NodeId node = 0; node < cfg.machine.topology.num_nodes(); ++node)
    sessions.push_back(engine.CreateSessionOnNode(node));
  size_t rr = 0;
  auto next_session = [&]() -> Engine::Session& {
    return *sessions[rr++ % sessions.size()];
  };

  // Load phase: dense keys 0..n-1 through the routed insert path.
  {
    std::vector<KeyValue> kvs;
    kvs.reserve(cfg.batch);
    for (Key k = 0; k < n;) {
      kvs.clear();
      for (uint64_t i = 0; i < cfg.batch && k < n; ++i, ++k) {
        kvs.push_back({k, k ^ 0x5bd1e995});
      }
      next_session().Insert(idx, kvs);
    }
  }
  engine.resource_usage().Reset();

  // Workload phase: random existing keys.
  Xoshiro256 rng(cfg.seed);
  RunResult result;
  if (cfg.upserts) {
    std::vector<KeyValue> kvs(cfg.batch);
    for (uint64_t done = 0; done < cfg.ops; done += kvs.size()) {
      size_t m = std::min<uint64_t>(cfg.batch, cfg.ops - done);
      kvs.resize(m);
      for (auto& kv : kvs) {
        kv.key = rng.NextBounded(n);
        kv.value = rng.Next();
      }
      next_session().Upsert(idx, kvs);
    }
  } else {
    std::vector<Key> keys(cfg.batch);
    for (uint64_t done = 0; done < cfg.ops; done += keys.size()) {
      size_t m = std::min<uint64_t>(cfg.batch, cfg.ops - done);
      keys.resize(m);
      for (auto& k : keys) k = rng.NextBounded(n);
      next_session().Lookup(idx, keys);
    }
  }
  result.ops = cfg.ops;
  result.sim_seconds = engine.resource_usage().CriticalTimeNs() / 1e9;
  result.link_bytes = engine.resource_usage().TotalLinkBytes();
  result.mc_bytes = engine.resource_usage().TotalMemCtrlBytes();
  engine.Stop();
  return result;
}

RunResult RunSharedPointOps(const PointOpsConfig& cfg) {
  const uint64_t n = ScaledKeys(cfg);
  const uint32_t key_bits = KeyBitsFor(n, cfg.prefix_bits);
  const numa::Topology& topo = cfg.machine.topology;
  numa::MemoryPool pool(topo.num_nodes());
  baseline::SharedTree tree(
      &pool, {.prefix_bits = cfg.prefix_bits, .key_bits = key_bits},
      baseline::Placement::kInterleaved);
  for (Key k = 0; k < n; ++k) tree.Insert(k, k ^ 0x5bd1e995);

  sim::CostModel model(topo);
  sim::ResourceUsage usage(topo, topo.total_cores());

  // Execute real operations (single host thread) while modeling the cost
  // of spreading them over every core of the machine. The shared tree is
  // one global object: every access goes to interleaved memory, hot upper
  // levels are replicated in every LLC (so the effective budget is one
  // node's LLC regardless of machine size), and upserts pay the coherence
  // penalty of atomics on shared lines.
  Xoshiro256 rng(cfg.seed);
  const uint64_t workers = topo.total_cores();
  const uint64_t ops_per_worker = (cfg.ops + workers - 1) / workers;

  // Real work (validation + honest data structure exercise), bounded.
  uint64_t checksum = 0;
  uint64_t real_ops = std::min<uint64_t>(cfg.ops, 1u << 18);
  for (uint64_t i = 0; i < real_ops; ++i) {
    Key k = rng.NextBounded(n);
    if (cfg.upserts) {
      tree.Upsert(k, i);
    } else {
      checksum += tree.Lookup(k).value_or(0);
    }
  }
  (void)checksum;

  sim::TreeShape shape;
  shape.levels = tree.levels();
  shape.fanout = 1u << cfg.prefix_bits;
  shape.keys = tree.size();
  shape.bytes = tree.memory_bytes();
  const double llc_budget =
      cfg.machine.llc_bytes_per_node / cfg.scale / topo.cores_per_node();

  for (uint64_t w = 0; w < workers; ++w) {
    numa::NodeId src = topo.NodeOfCore(static_cast<numa::CoreId>(w));
    sim::PointOpCost cost = sim::BatchPointOpCost(
        model, src, 0, shape, llc_budget, ops_per_worker,
        /*interleaved=*/true, cfg.upserts, /*coherence_writes=*/cfg.upserts);
    usage.AddComputeNs(static_cast<uint32_t>(w), cost.compute_ns);
    // Interleaved misses spread uniformly over all home nodes.
    uint64_t per_home = cost.dram_bytes / topo.num_nodes();
    for (numa::NodeId home = 0; home < topo.num_nodes(); ++home) {
      usage.AddMemoryTraffic(src, home, per_home);
    }
  }

  RunResult result;
  result.ops = ops_per_worker * workers;
  result.sim_seconds = usage.CriticalTimeNs() / 1e9;
  result.link_bytes = usage.TotalLinkBytes();
  result.mc_bytes = usage.TotalMemCtrlBytes();
  return result;
}

RunResult RunErisScan(const ScanConfig& cfg) {
  const uint64_t n = std::max<uint64_t>(
      1u << 16, static_cast<uint64_t>(cfg.entries / cfg.scale));
  EngineOptions opts = SimEngineOptions(cfg.machine, cfg.scale);
  Engine engine(opts);
  storage::ObjectId col = engine.CreateColumn("bench");
  engine.Start();
  auto session = engine.CreateSession();
  {
    Xoshiro256 rng(cfg.seed);
    std::vector<Value> values(8192);
    for (uint64_t done = 0; done < n;) {
      size_t m = std::min<uint64_t>(values.size(), n - done);
      values.resize(m);
      if (cfg.clustered) {
        // Dense ascending values: each partition's segments cover narrow,
        // disjoint value bands, the shape zone maps exploit.
        for (size_t i = 0; i < m; ++i) {
          values[i] = (done + i) * ((1ull << 63) / std::max<uint64_t>(n, 1));
        }
      } else {
        for (auto& v : values) v = rng.Next() >> 1;
      }
      session->Append(col, values);
      done += m;
    }
  }
  engine.resource_usage().Reset();
  uint64_t rows = 0;
  for (uint32_t r = 0; r < cfg.repeats; ++r) {
    rows += session->ScanColumn(col, cfg.lo, cfg.hi).rows;
  }
  RunResult result;
  result.ops = rows;
  result.sim_seconds = engine.resource_usage().CriticalTimeNs() / 1e9;
  result.link_bytes = engine.resource_usage().TotalLinkBytes();
  result.mc_bytes = engine.resource_usage().TotalMemCtrlBytes();
  engine.Stop();
  return result;
}

RunResult RunSharedScan(const ScanConfig& cfg, baseline::Placement placement) {
  const uint64_t n = std::max<uint64_t>(
      1u << 16, static_cast<uint64_t>(cfg.entries / cfg.scale));
  const numa::Topology& topo = cfg.machine.topology;
  numa::MemoryPool pool(topo.num_nodes());
  baseline::SharedColumn column(&pool, placement);
  Xoshiro256 rng(cfg.seed);
  for (uint64_t i = 0; i < n; ++i) column.Append(rng.Next() >> 1);

  sim::CostModel model(topo);
  sim::ResourceUsage usage(topo, topo.total_cores());
  const uint64_t workers = topo.total_cores();
  const uint64_t rows_per_worker = n / workers;
  const uint64_t bytes_per_worker = rows_per_worker * sizeof(Value);

  // Real slice scans (bounded) for functional honesty.
  uint64_t checksum = 0;
  for (uint64_t w = 0; w < std::min<uint64_t>(workers, 8); ++w) {
    checksum += column.ScanSumSlice(w * rows_per_worker,
                                    (w + 1) * rows_per_worker, 0, ~0ull);
  }
  (void)checksum;

  for (uint32_t rep = 0; rep < cfg.repeats; ++rep) {
    for (uint64_t w = 0; w < workers; ++w) {
      numa::NodeId src = topo.NodeOfCore(static_cast<numa::CoreId>(w));
      if (placement == baseline::Placement::kSingleNode) {
        usage.AddComputeNs(static_cast<uint32_t>(w),
                           model.StreamNs(src, 0, bytes_per_worker));
        usage.AddMemoryTraffic(src, 0, bytes_per_worker);
      } else {
        usage.AddComputeNs(static_cast<uint32_t>(w),
                           model.InterleavedStreamNs(src, bytes_per_worker));
        uint64_t per_home = bytes_per_worker / topo.num_nodes();
        for (numa::NodeId home = 0; home < topo.num_nodes(); ++home) {
          usage.AddMemoryTraffic(src, home, per_home);
        }
      }
    }
  }

  RunResult result;
  result.ops = static_cast<uint64_t>(cfg.repeats) * rows_per_worker * workers;
  result.sim_seconds = usage.CriticalTimeNs() / 1e9;
  result.link_bytes = usage.TotalLinkBytes();
  result.mc_bytes = usage.TotalMemCtrlBytes();
  return result;
}

}  // namespace eris::bench
