// Autonomous Execution Unit: the worker at the heart of ERIS' data-oriented
// architecture.
//
// Exactly one AEU runs per core. It exclusively owns one partition per data
// object and executes the loop of Figure 3: (1) drain and group the
// incoming data command buffer by object and command type — grouping lets
// the AEU coalesce work, e.g. execute several scan commands in one shared
// pass under MVCC, and probe lookup batches together to hide memory
// latency —, (2) process the groups, (3) handle balancing and transfer
// commands, then flush its outgoing buffers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/balance_messages.h"
#include "routing/arena_vec.h"
#include "routing/router.h"
#include "storage/partition.h"

namespace eris::durability {
class WalWriter;
}  // namespace eris::durability

namespace eris::core {

class Engine;

/// Counters of one AEU's loop (private to the AEU, read by tests/benches
/// between quiescent points).
struct AeuLoopStats {
  uint64_t iterations = 0;
  uint64_t commands_processed = 0;
  uint64_t elements_processed = 0;
  uint64_t commands_forwarded = 0;
  uint64_t commands_deferred = 0;
  uint64_t scans_coalesced = 0;  ///< scan commands saved by scan sharing
  uint64_t lookups_coalesced = 0;  ///< lookup commands merged into a shared probe
  uint64_t zone_segments_skipped = 0;  ///< per-job segment skips via zone maps
  uint64_t link_transfers = 0;
  uint64_t copy_transfers = 0;
  uint64_t bytes_copied = 0;     ///< copy-transfer payload bytes sent
  uint64_t maintenance_runs = 0; ///< idle-time MVCC GC passes
  uint64_t versions_reclaimed = 0;
  uint64_t commands_expired = 0;   ///< dropped at dequeue: deadline passed
  uint64_t units_expired = 0;      ///< completion units of expired commands
  uint64_t commands_quarantined = 0;  ///< poison commands dead-lettered
  // --- query pipelines & MPSM join (DESIGN.md §13) ---
  uint64_t pipelines_fused = 0;     ///< pipeline commands run fused
  uint64_t pipelines_baseline = 0;  ///< pipeline commands run operator-at-a-time
  uint64_t pipeline_segments_pruned = 0;  ///< zone-map skips before the filter
  uint64_t pipeline_filter_bytes = 0;   ///< driving-filter bytes streamed
  uint64_t pipeline_filter2_bytes = 0;  ///< refining-filter bytes gathered
  uint64_t pipeline_agg_bytes = 0;      ///< aggregate bytes streamed/gathered
  uint64_t join_runs_sorted = 0;        ///< local runs sorted in place
  uint64_t join_entries_local = 0;      ///< staged entries that stayed on-AEU
  uint64_t join_entries_exchanged = 0;  ///< entries routed across AEUs (boundary straddle)
  uint64_t join_boundary_lookups = 0;   ///< merge-time strays resolved via routed lookups
  // --- durability (DESIGN.md §14) ---
  uint64_t wal_records = 0;  ///< effect records logged ahead of apply
  uint64_t wal_commits = 0;  ///< iteration-end group commits that flushed
  uint64_t wal_stalls = 0;   ///< inline commits forced by backpressure
  uint64_t wal_drops = 0;    ///< write units shed because the WAL sealed
};

/// \brief One worker, pinned to one core, owning its partitions.
class Aeu {
 public:
  Aeu(routing::AeuId id, Engine* engine);
  ~Aeu();

  Aeu(const Aeu&) = delete;
  Aeu& operator=(const Aeu&) = delete;

  routing::AeuId id() const { return id_; }
  numa::NodeId node() const { return node_; }

  /// Registers the AEU's partition of a new data object (engine setup,
  /// before the loop runs).
  void AddPartition(const storage::DataObjectDesc& desc,
                    storage::KeyRange initial_range);

  /// Swaps in a partition rebuilt from a snapshot stream (recovery only,
  /// before the loop runs).
  void ReplacePartition(storage::ObjectId object, storage::Partition&& part);

  /// Attaches the AEU's write-ahead log. With a log attached the loop logs
  /// the locally applied effect of every data command before applying it,
  /// group-commits once per iteration and defers write acknowledgements to
  /// that commit (DESIGN.md §14). The writer's group buffer is wired to the
  /// AEU's node-local memory manager. nullptr detaches (in-memory mode).
  void set_wal(durability::WalWriter* wal);

  /// Commits any buffered log records and delivers deferred write
  /// acknowledgements. Called by the engine after the loop stopped
  /// (shutdown residue) — not thread safe against a running loop.
  void FlushWal();

  storage::Partition* partition(storage::ObjectId object) {
    return partitions_[object].get();
  }
  const storage::Partition* partition(storage::ObjectId object) const {
    return partitions_[object].get();
  }

  /// One pass of the AEU loop. Returns true when any work was done.
  bool RunLoopIteration();

  /// Thread-mode body: pins to a core and loops until the engine stops.
  void ThreadMain();

  const AeuLoopStats& loop_stats() const { return stats_; }
  routing::Endpoint& endpoint() { return endpoint_; }

  /// Loop epoch, bumped once per RunLoopIteration. Read by the watchdog.
  uint64_t heartbeat() const {
    return heartbeat_.load(std::memory_order_relaxed);
  }

  /// The AEU whose loop is executing on this thread (nullptr outside an
  /// AEU loop). Lets fault-injection hooks target one worker.
  static Aeu* Current();

  /// While a data command is being processed (or probed at the
  /// `kAeuProcess` injection point), the command under execution.
  const routing::CommandView* current_command() const {
    return current_command_;
  }

  /// A quarantined poison command: header plus a copy of its payload.
  struct DeadLetter {
    routing::CommandHeader header;
    std::vector<uint8_t> payload;
  };
  const std::vector<DeadLetter>& dead_letters() const { return dead_letters_; }

  /// Advisory: no undelivered outgoing commands and no deferred records,
  /// as of the end of the last loop iteration (the loop publishes the flag
  /// each pass, so cross-thread readers — Engine::Quiesce, the watchdog —
  /// never touch the loop-private buffers). Engine::Quiesce() samples it
  /// stably over several passes.
  bool IsQuiescent() const {
    return quiescent_.load(std::memory_order_acquire);
  }

 private:
  struct Group {
    storage::ObjectId object;
    routing::CommandType type;
    routing::AeuArenaVec<routing::CommandView> commands;
  };

  /// Drains the mailbox, groups records, processes them.
  bool ProcessIncoming();
  void GroupRecords(std::span<const uint8_t> region);
  void ProcessGroups();
  void RetryDeferred();
  /// Claims the next group slot (reusing retained command capacity; a new
  /// slot's command vector is wired to the node-local manager).
  Group* AppendGroup(storage::ObjectId object, routing::CommandType type);

  // --- data command handlers (one per group) ---
  void ProcessLookupGroup(const Group& g);
  void ProcessWriteGroup(const Group& g);   // insert/upsert
  void ProcessEraseGroup(const Group& g);
  void ProcessAppendGroup(const Group& g);
  void ProcessScanColumnGroup(const Group& g);
  void ProcessScanIndexGroup(const Group& g);
  void ProcessScanStatsGroup(const Group& g);
  void ProcessScanMaterializeGroup(const Group& g);
  void ProcessJoinProbeGroup(const Group& g);
  void ProcessPipelineGroup(const Group& g);
  void ProcessJoinScatterGroup(const Group& g);
  void ProcessJoinStageGroup(const Group& g);
  void ProcessJoinMergeGroup(const Group& g);
  void ProcessFence(const routing::CommandView& cmd);

  // --- balancing handlers ---
  void HandleBalanceRange(const routing::CommandView& cmd);
  void HandleBalancePhysical(const routing::CommandView& cmd);
  void HandleTransferRequest(const routing::CommandView& cmd);
  void HandleInstall(const routing::CommandView& cmd);
  void CompleteFetch(storage::ObjectId object, storage::KeyRange range);

  /// Key classification against own range & pending inbound ranges.
  bool InPendingRange(storage::ObjectId object, storage::Key key) const;
  bool RangeOverlapsPending(storage::ObjectId object, storage::Key lo,
                            storage::Key hi) const;

  /// Re-encodes a command with a subset payload into the deferred queue.
  void DeferCommand(const routing::CommandHeader& header,
                    std::span<const uint8_t> payload);

  /// Drops a command whose deadline has passed: reports the drop to its
  /// sink (same completion units as processing) and counts it.
  void ExpireCommand(const routing::CommandView& cmd);

  /// Runs each command of `g` through the `kAeuProcess` injection point;
  /// a throwing hook marks the command poison. Poison commands are removed
  /// from the group and either deferred for retry or quarantined.
  void FilterPoisoned(Group* g);
  void HandlePoisoned(const routing::CommandView& cmd);
  static uint64_t PoisonKey(const routing::CommandView& cmd);

  /// Sends the copy-transfer chunk stream for a flattened partition.
  void SendCopyTransfer(storage::ObjectId object, storage::KeyRange range,
                        routing::AeuId requester, bool is_physical,
                        storage::Partition&& part);

  /// Idle-time storage maintenance (paper §6): reclaims MVCC undo
  /// versions no active snapshot can read.
  void RunMaintenance();

  // --- durability (DESIGN.md §14) ---
  /// Appends one effect record (CommandHeader + payload, the on-wire
  /// serialization) to the attached WAL. Only the locally applied subset
  /// of a command is ever logged, so per-AEU replay is a pure function of
  /// that AEU's own log. Returns the append status: ResourceExhausted
  /// means a (injected) group-buffer allocation failure — nothing was
  /// logged, the log is NOT sealed, and the caller must shed the effect
  /// instead of applying it.
  Status WalLogEffect(routing::CommandType type, storage::ObjectId object,
                      std::span<const uint8_t> payload);
  /// Logs a partition's full contents as kUpsertBatch/kAppendBatch chunks
  /// (link-transfer install: the absorbed partition was never flattened).
  void WalLogPartitionContents(storage::ObjectId object,
                               const storage::Partition& part);
  /// Group commit at iteration end + deferred-ack delivery.
  void CommitWalAndAck();
  /// Acks a write: immediately without a WAL, else after the group commit.
  void AckWrite(routing::ResultSink* sink, uint64_t applied, uint64_t units);

  // --- monitoring & sim accounting ---
  void RecordGroupMetrics(storage::ObjectId object, uint64_t ops,
                          double exec_ns);
  void ChargePointOps(storage::ObjectId object, uint64_t ops, bool is_write);
  /// Lookup-specific variant: memory cost is charged per unique index node
  /// the batch touched (`nodes_touched`, 0 = fall back to per-key), while
  /// routing CPU stays per key.
  void ChargeLookupOps(storage::ObjectId object, uint64_t keys,
                       uint64_t nodes_touched);
  void ChargeRoutingCosts();

  Engine* engine_;
  routing::AeuId id_;
  numa::NodeId node_;
  routing::Endpoint endpoint_;
  // Fixed-capacity slot array (sized at construction) + published count:
  // objects may be registered while the loop runs (query-layer
  // intermediates), so the loop must never read vector members the
  // registering thread writes. AddPartition fills the next slot, then
  // releases num_partitions_; loop-side iteration acquires it.
  std::vector<std::unique_ptr<storage::Partition>> partitions_;
  std::atomic<uint32_t> num_partitions_{0};

  // Balancing state.
  struct PendingFetch {
    storage::ObjectId object;
    storage::KeyRange range;
  };
  struct BalanceTicket {
    storage::ObjectId object;
    routing::ResultSink* sink;
    uint32_t outstanding;
  };
  std::vector<PendingFetch> pending_fetches_;
  std::vector<BalanceTicket> balance_tickets_;
  std::vector<std::vector<uint8_t>> deferred_;

  // Durability state (null/empty when the engine runs in-memory).
  durability::WalWriter* wal_ = nullptr;
  struct PendingAck {
    routing::ResultSink* sink;
    uint64_t applied;
    uint64_t units;
  };
  /// Write acknowledgements held back until the iteration-end group commit
  /// (acknowledged implies durable).
  std::vector<PendingAck> pending_acks_;

  // Scratch. Everything the dequeue/dispatch path touches per iteration is
  // arena-backed (AeuArenaVec carving from the AEU's node-local manager):
  // buffers grow to the workload's high-water mark, then are reused, so
  // steady-state command processing never allocates —
  // fi::Point::kAeuScratchAlloc counts violations (DESIGN.md §16).
  //
  // The group table is slot-reused across drains (a plain clear() would
  // destroy the per-group command vectors): only the first groups_used_
  // entries are live, and a slot keeps its command capacity when recycled.
  std::vector<Group> groups_;
  size_t groups_used_ = 0;
  routing::AeuArenaVec<routing::CommandView> control_;
  routing::AeuArenaVec<storage::Key> scratch_keys_;
  routing::AeuArenaVec<storage::Value> scratch_values_;
  routing::AeuArenaVec<routing::KeyValue> scratch_kvs_;
  routing::AeuArenaVec<uint8_t> scratch_payload_;
  routing::AeuArenaVec<uint8_t> transfer_payload_;  ///< copy-transfer chunks
  routing::AeuArenaVec<uint8_t> wal_scratch_;       ///< WAL effect encoding

  // Handler staging (formerly function-local thread_local vectors; members
  // so the buffers are node-local and their growth is observable).
  /// A slice of the group-wide "mine" key buffer belonging to one command.
  struct LookupSegment {
    routing::ResultSink* sink;
    uint32_t offset;
    uint32_t len;
  };
  routing::AeuArenaVec<LookupSegment> lookup_segments_;
  routing::AeuArenaVec<storage::Key> pending_keys_;
  routing::AeuArenaVec<storage::Key> foreign_keys_;
  routing::AeuArenaVec<storage::Key> mine_keys_;
  /// span<const bool> needs contiguous plain bools (std::vector<bool> is
  /// bit-packed), so lookups keep a flat found-flag buffer.
  routing::AeuArenaVec<bool> found_;
  routing::AeuArenaVec<routing::KeyValue> pending_kvs_;
  routing::AeuArenaVec<routing::KeyValue> mine_kvs_;
  struct ScanJob {
    routing::ScanParams params;
    routing::ResultSink* sink;
    uint64_t visible = 0;
    uint64_t rows = 0;
    uint64_t sum = 0;
  };
  routing::AeuArenaVec<ScanJob> scan_jobs_;
  struct PipelineJob {
    routing::PipelineParams p;
    routing::ResultSink* sink;
    const storage::MvccColumn* f2 = nullptr;
    const storage::MvccColumn* agg = nullptr;
    uint64_t visible = 0;
    bool fast = false;
    uint64_t rows = 0;
    uint64_t sum = 0;
  };
  routing::AeuArenaVec<PipelineJob> pipeline_jobs_;
  routing::AeuArenaVec<PipelineJob*> pipeline_fused_;

  // Query-pipeline/join scratch: node-local arena buffers reused across
  // commands. After warm-up neither pipelines nor joins allocate
  // (fi::Point::kQueryScratchAlloc counts violations).
  routing::QueryArenaVec<uint32_t> sel_;      ///< selection vector (per segment)
  routing::QueryArenaVec<uint64_t> mat_idx_;  ///< baseline materialized indices
  routing::QueryArenaVec<routing::KeyValue> join_run_;  ///< local sorted run
  routing::QueryArenaVec<routing::KeyValue> join_out_;  ///< boundary exchange
  routing::QueryArenaVec<storage::Key> join_keys_;      ///< stray-key lookups

  /// Per-join staging buffer for the MPSM boundary-range exchange: S
  /// entries routed here wait until the kJoinMerge command consumes them.
  /// Slots are recycled by join id; steady-state joins reuse capacity.
  struct JoinStage {
    uint64_t join_id = 0;
    bool active = false;
    routing::QueryArenaVec<routing::KeyValue> entries;
    explicit JoinStage(numa::NodeMemoryManager* memory) : entries(memory) {}
  };
  std::vector<std::unique_ptr<JoinStage>> join_stages_;
  JoinStage* FindOrCreateStage(uint64_t join_id);
  /// Ring of recently merged join ids: staged entries arriving after their
  /// merge (rebalance races) are resolved via routed lookups instead of
  /// buffered forever.
  static constexpr size_t kMergedRing = 16;
  uint64_t merged_join_ids_[kMergedRing] = {};
  size_t merged_join_pos_ = 0;
  bool JoinAlreadyMerged(uint64_t join_id) const;

  /// Collects the local partition of a keyed object into `out`, sorted by
  /// key (in place for unordered hash containers — the MPSM local sort).
  void BuildLocalRun(storage::ObjectId object,
                     routing::QueryArenaVec<routing::KeyValue>* out);

  AeuLoopStats stats_;
  std::atomic<uint64_t> heartbeat_{0};
  /// Published by the loop at the end of every iteration; see IsQuiescent.
  std::atomic<bool> quiescent_{true};
  const routing::CommandView* current_command_ = nullptr;
  /// Retry counts of commands whose processing hook threw, keyed by a hash
  /// of the command's identity (header fields + payload).
  std::unordered_map<uint64_t, uint32_t> poison_attempts_;
  std::vector<DeadLetter> dead_letters_;
  uint64_t last_bytes_flushed_ = 0;
  uint32_t idle_iterations_ = 0;
  uint64_t last_flushes_ = 0;
  // Per-group accounting (set by the handlers, read by ProcessGroups).
  uint64_t group_ops_ = 0;
  double group_modeled_ns_ = 0;
};

}  // namespace eris::core
