// Configurable NUMA-aware load balancing (paper Section 3.3).
//
// The adaption loop samples per-partition metrics (access frequency for
// range-partitioned objects, physical size for physically partitioned
// ones), checks the imbalance against a threshold, computes a target
// partitioning with a configurable aggressiveness — One-Shot rebalances to
// the fully balanced target at once, Moving-Average(k) smooths the measured
// distribution over each partition's k neighbors per side and therefore
// adapts gradually (MA over the full histogram degenerates to One-Shot) —
// and derives the balancing and transfer commands to get there.
//
// This header contains the pure, deterministic parts (target computation
// and plan building); the Engine owns the loop and command delivery.
#pragma once

#include <cstdint>
#include <vector>

#include "core/balance_messages.h"
#include "routing/partition_table.h"
#include "storage/types.h"

namespace eris::core {

enum class BalanceAlgorithm : uint8_t {
  kNone = 0,       ///< balancing disabled (the Figure 13 baseline)
  kOneShot,        ///< full rebalance per cycle: aggressive, fast recovery
  kMovingAverage,  ///< MA-k smoothed target: gentle, slower recovery
};

const char* BalanceAlgorithmName(BalanceAlgorithm a);

/// Which per-partition measurement drives range balancing (paper §3.3:
/// access frequency is the primary metric; the execution time of the data
/// commands is the additional one — it also captures different tree depths
/// and cache-resident partitions).
enum class BalanceMetric : uint8_t {
  kAccessFrequency = 0,
  kExecutionTime = 1,
};

struct LoadBalancerConfig {
  BalanceAlgorithm algorithm = BalanceAlgorithm::kOneShot;
  BalanceMetric metric = BalanceMetric::kAccessFrequency;
  /// Neighbors per side in the moving average (MA-k).
  uint32_t ma_window = 1;
  /// Trigger: rebalance when the coefficient of variation (stddev/mean) of
  /// the partition metric exceeds this.
  double trigger_cv = 0.2;
  /// Do not react to sample periods with fewer total accesses than this.
  uint64_t min_total_accesses = 4096;
  /// Sample period of the balancer loop in thread mode.
  uint32_t interval_ms = 250;
};

/// Smoothed metric: s_i = mean of m_{i-k .. i+k} clamped to the histogram
/// edges (the paper's MA-k).
std::vector<double> MovingAverageSmooth(const std::vector<double>& metric,
                                        uint32_t k);

/// stddev / mean of the metric (0 when the metric sums to 0).
double CoefficientOfVariation(const std::vector<double>& metric);

/// \brief Computes the target partitioning for a range-partitioned object.
///
/// `current` is the ordered current partitioning, `metric[i]` the measured
/// load of current range i. Returns the new exclusive upper bounds (same
/// owner order, last bound = kMaxKey). Density within a range is assumed
/// uniform; the target assigns each partition a load share proportional to
/// its smoothed metric (uniform shares for One-Shot), so MA-k moves each
/// boundary only part of the way — gentler drops, slower recovery.
/// `domain_hi` bounds the interpolation inside the last range (whose table
/// entry extends to kMaxKey as a routing sentinel).
std::vector<storage::Key> ComputeTargetBoundaries(
    const std::vector<routing::RangeEntry>& current,
    const std::vector<double>& metric, BalanceAlgorithm algorithm,
    uint32_t ma_window, storage::Key domain_hi = storage::kMaxKey);

/// \brief A balancing cycle's worth of commands for one range object.
struct RebalancePlan {
  struct AeuPlan {
    routing::AeuId aeu = routing::kInvalidAeu;
    storage::KeyRange new_range;
    std::vector<FetchInstr> fetches;
  };
  /// One entry per AEU whose range changed (superset of those who fetch).
  std::vector<AeuPlan> aeus;
  /// The table to install.
  std::vector<routing::RangeEntry> new_entries;

  bool empty() const { return aeus.empty(); }
  /// Total key-space share moved (for stats/tests): number of fetches.
  size_t num_fetches() const;
};

/// Derives per-AEU new ranges and fetch instructions from old and new
/// boundaries (owners keep their position order).
RebalancePlan BuildRangePlan(const std::vector<routing::RangeEntry>& current,
                             const std::vector<storage::Key>& new_his);

/// \brief A balancing cycle for a physically partitioned object.
struct PhysicalPlan {
  struct AeuPlan {
    routing::AeuId aeu = routing::kInvalidAeu;
    std::vector<PhysFetchInstr> fetches;
  };
  std::vector<AeuPlan> aeus;
  bool empty() const { return aeus.empty(); }
};

/// Computes tuple-count transfers equalizing `tuples` across AEUs. Matching
/// is NUMA-aware: surpluses are first matched to deficits on the same node
/// ("link" transfers), remaining imbalance moves across nodes ("copy").
/// `aeu_node[a]` gives the node of AEU a. Transfers below `min_tuples` are
/// suppressed.
PhysicalPlan BuildPhysicalPlan(const std::vector<uint64_t>& tuples,
                               const std::vector<uint32_t>& aeu_node,
                               uint64_t min_tuples = 1);

}  // namespace eris::core
