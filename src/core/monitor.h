// Monitoring: per-(AEU, data object) load metrics feeding the balancer.
//
// Each AEU updates its own counters after every processing group; the load
// balancer periodically snapshots a data object's distribution over all
// AEUs and resets the access counters (frequencies are per sample period,
// sizes are levels). Counter slots are cache-line padded per AEU so updates
// never bounce lines between workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "routing/data_command.h"
#include "storage/types.h"

namespace eris::core {

/// Metrics of one partition over the last sample period.
struct PartitionMetrics {
  uint64_t accesses = 0;      ///< keyed ops + scan commands touching it
  double exec_time_ns = 0;    ///< total processing time spent on it
  uint64_t tuples = 0;        ///< current tuple count (level)
  uint64_t bytes = 0;         ///< current physical size (level)

  double MeanExecNs() const {
    return accesses == 0 ? 0.0 : exec_time_ns / static_cast<double>(accesses);
  }
};

/// \brief Monitoring store: metrics[aeu][object].
class Monitor {
 public:
  Monitor(uint32_t num_aeus, uint32_t num_objects);

  /// Adds `ops` accesses taking `exec_ns` to (aeu, object).
  void RecordAccess(routing::AeuId aeu, storage::ObjectId object,
                    uint64_t ops, double exec_ns);

  /// Publishes the current physical size of (aeu, object)'s partition.
  void RecordSize(routing::AeuId aeu, storage::ObjectId object,
                  uint64_t tuples, uint64_t bytes);

  /// Snapshot of one object's distribution across AEUs; access counters and
  /// execution times are reset (sizes are level metrics and persist).
  std::vector<PartitionMetrics> SnapshotAndReset(storage::ObjectId object);

  /// Read-only snapshot without reset.
  std::vector<PartitionMetrics> Snapshot(storage::ObjectId object) const;

  uint32_t num_aeus() const { return num_aeus_; }
  uint32_t num_objects() const { return num_objects_; }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> accesses{0};
    std::atomic<uint64_t> exec_ns_int{0};  // nanoseconds, integer-accumulated
    std::atomic<uint64_t> tuples{0};
    std::atomic<uint64_t> bytes{0};
  };

  Cell& cell(routing::AeuId aeu, storage::ObjectId object) {
    return cells_[static_cast<size_t>(aeu) * num_objects_ + object];
  }
  const Cell& cell(routing::AeuId aeu, storage::ObjectId object) const {
    return cells_[static_cast<size_t>(aeu) * num_objects_ + object];
  }

  uint32_t num_aeus_;
  uint32_t num_objects_;
  std::vector<Cell> cells_;
};

/// \brief Heartbeat watchdog over the AEU worker loops.
///
/// Every AEU bumps an epoch counter once per loop iteration. The watchdog
/// (a background thread in kThreads engines, or an explicit
/// Engine::CheckAeuHealth() call) periodically observes each AEU's counter:
/// a counter that stays static across `strike_threshold` consecutive
/// observations *while the AEU has pending work* marks the AEU stalled. A
/// stalled AEU's partitions are flagged at the router (fail-fast shedding)
/// until its heartbeat advances again.
///
/// Observe() must be called from one thread at a time (the watchdog);
/// stalled() is readable concurrently from any thread.
class AeuWatchdog {
 public:
  AeuWatchdog(uint32_t num_aeus, uint32_t strike_threshold);

  struct Observation {
    bool newly_stalled = false;
    bool newly_recovered = false;
  };

  /// One observation of AEU `a`: `heartbeat` is its current loop epoch,
  /// `has_pending_work` whether its mailbox (or deferred queue) holds
  /// commands. Idle AEUs are never declared stalled.
  Observation Observe(routing::AeuId a, uint64_t heartbeat,
                      bool has_pending_work);

  /// Marks AEU `a` stalled *permanently*: Observe() never reports it as
  /// newly_recovered again, no matter how its heartbeat advances. Used for
  /// fail-stop conditions (a sealed WAL, DESIGN.md §15) where the AEU loop
  /// keeps running but the AEU must stay quarantined. Safe to call from any
  /// thread.
  void ForceStall(routing::AeuId a);

  bool stalled(routing::AeuId a) const {
    return states_[a].stalled.load(std::memory_order_acquire);
  }
  bool force_stalled(routing::AeuId a) const {
    return states_[a].forced.load(std::memory_order_acquire);
  }
  uint32_t stalled_count() const {
    return stalled_count_.load(std::memory_order_acquire);
  }
  /// Total stall transitions observed (monotone; recoveries don't subtract).
  uint64_t stall_events() const {
    return stall_events_.load(std::memory_order_relaxed);
  }
  uint32_t num_aeus() const {
    return static_cast<uint32_t>(states_.size());
  }

 private:
  struct State {
    uint64_t last_heartbeat = 0;
    bool seen = false;  ///< last_heartbeat holds a real observation
    uint32_t strikes = 0;
    std::atomic<bool> stalled{false};
    std::atomic<bool> forced{false};  ///< sticky: never auto-recovers
  };

  uint32_t strike_threshold_;
  std::vector<State> states_;
  std::atomic<uint32_t> stalled_count_{0};
  std::atomic<uint64_t> stall_events_{0};
};

}  // namespace eris::core
