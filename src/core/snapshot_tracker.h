// Active-snapshot tracking for MVCC garbage collection.
//
// Scans pin the snapshot timestamp they read at; undo versions older than
// the oldest active snapshot are unreachable and can be reclaimed. The
// paper's future work proposes using AEU idle time for "storage
// maintenance and reorganization" — the AEU loop calls into this tracker
// during idle iterations to pick a safe GC watermark.
#pragma once

#include <cstdint>
#include <map>

#include "common/spinlock.h"

namespace eris::core {

/// \brief Thread-safe registry of in-flight snapshot timestamps.
class SnapshotTracker {
 public:
  /// Pins `ts`; pair with Unregister. Reentrant per timestamp.
  void Register(uint64_t ts) {
    std::lock_guard<SpinLock> guard(lock_);
    ++active_[ts];
  }

  void Unregister(uint64_t ts) {
    std::lock_guard<SpinLock> guard(lock_);
    auto it = active_.find(ts);
    if (it == active_.end()) return;
    if (--it->second == 0) active_.erase(it);
  }

  /// Oldest pinned snapshot, or `fallback` when none is active. Versions
  /// overwritten at or before the returned watermark are reclaimable.
  uint64_t MinActive(uint64_t fallback) const {
    std::lock_guard<SpinLock> guard(lock_);
    return active_.empty() ? fallback : active_.begin()->first;
  }

  size_t active_count() const {
    std::lock_guard<SpinLock> guard(lock_);
    return active_.size();
  }

  /// RAII pin.
  class Pin {
   public:
    Pin(SnapshotTracker* tracker, uint64_t ts) : tracker_(tracker), ts_(ts) {
      tracker_->Register(ts_);
    }
    ~Pin() { tracker_->Unregister(ts_); }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

   private:
    SnapshotTracker* tracker_;
    uint64_t ts_;
  };

 private:
  mutable SpinLock lock_;
  std::map<uint64_t, uint32_t> active_;  // ts -> pin count
};

}  // namespace eris::core
