// Payload structures of the load balancer's control commands.
//
// A balancing cycle turns a new target partitioning into a series of
// balancing commands: every growing AEU receives its new key range plus a
// set of fetch instructions naming the AEUs that hold the missing data; the
// AEU then issues transfer requests, and the sources answer either with an
// in-process partition handoff ("link", same NUMA node) or a serialized
// partition stream ("copy", across nodes).
#pragma once

#include <cstdint>

#include "routing/data_command.h"
#include "storage/types.h"

namespace eris::core {

/// One fetch instruction inside a kBalanceRange payload.
struct FetchInstr {
  storage::KeyRange range;
  routing::AeuId source = routing::kInvalidAeu;
  uint32_t pad = 0;
};
static_assert(sizeof(FetchInstr) == 24);

/// Header of a kBalanceRange payload; followed by FetchInstr[num_fetches].
struct BalanceRangeHeader {
  storage::KeyRange new_range;
  uint32_t num_fetches = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(BalanceRangeHeader) == 24);

/// One fetch instruction inside a kBalancePhysical payload.
struct PhysFetchInstr {
  uint64_t tuples = 0;
  routing::AeuId source = routing::kInvalidAeu;
  uint32_t pad = 0;
};
static_assert(sizeof(PhysFetchInstr) == 16);

/// Header of a kBalancePhysical payload; followed by
/// PhysFetchInstr[num_fetches].
struct BalancePhysicalHeader {
  uint32_t num_fetches = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(BalancePhysicalHeader) == 8);

/// Payload of kTransferRequest.
struct TransferRequest {
  storage::KeyRange range;        ///< keyed objects: range to hand over
  uint64_t tuples = 0;            ///< physical objects: tuple count
  routing::AeuId requester = routing::kInvalidAeu;
  uint32_t is_physical = 0;
};
static_assert(sizeof(TransferRequest) == 32);

/// Fixed prefix of a kInstallPartition payload. For a link transfer,
/// `linked` carries an in-process partition handoff (same NUMA node, zero
/// copy); for a copy transfer the serialized partition stream follows this
/// header in the payload.
struct InstallHeader {
  storage::KeyRange range;
  routing::AeuId source = routing::kInvalidAeu;
  uint8_t is_link = 0;      ///< 1 = in-process handoff, 0 = copy stream
  uint8_t is_final = 0;     ///< 1 = last chunk of this transfer
  uint8_t is_physical = 0;  ///< 1 = column values, 0 = key/value entries
  uint8_t pad = 0;
  void* linked = nullptr;  ///< storage::Partition* for link transfers
};
static_assert(sizeof(InstallHeader) == 32);

}  // namespace eris::core
