#include "core/monitor.h"

#include <algorithm>

namespace eris::core {

Monitor::Monitor(uint32_t num_aeus, uint32_t num_objects)
    : num_aeus_(num_aeus),
      num_objects_(num_objects),
      cells_(static_cast<size_t>(num_aeus) * num_objects) {}

void Monitor::RecordAccess(routing::AeuId aeu, storage::ObjectId object,
                           uint64_t ops, double exec_ns) {
  Cell& c = cell(aeu, object);
  c.accesses.fetch_add(ops, std::memory_order_relaxed);
  c.exec_ns_int.fetch_add(static_cast<uint64_t>(exec_ns),
                          std::memory_order_relaxed);
}

void Monitor::RecordSize(routing::AeuId aeu, storage::ObjectId object,
                         uint64_t tuples, uint64_t bytes) {
  Cell& c = cell(aeu, object);
  c.tuples.store(tuples, std::memory_order_relaxed);
  c.bytes.store(bytes, std::memory_order_relaxed);
}

std::vector<PartitionMetrics> Monitor::SnapshotAndReset(
    storage::ObjectId object) {
  std::vector<PartitionMetrics> out(num_aeus_);
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    Cell& c = cell(a, object);
    out[a].accesses = c.accesses.exchange(0, std::memory_order_relaxed);
    out[a].exec_time_ns = static_cast<double>(
        c.exec_ns_int.exchange(0, std::memory_order_relaxed));
    out[a].tuples = c.tuples.load(std::memory_order_relaxed);
    out[a].bytes = c.bytes.load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<PartitionMetrics> Monitor::Snapshot(
    storage::ObjectId object) const {
  std::vector<PartitionMetrics> out(num_aeus_);
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    const Cell& c = cell(a, object);
    out[a].accesses = c.accesses.load(std::memory_order_relaxed);
    out[a].exec_time_ns =
        static_cast<double>(c.exec_ns_int.load(std::memory_order_relaxed));
    out[a].tuples = c.tuples.load(std::memory_order_relaxed);
    out[a].bytes = c.bytes.load(std::memory_order_relaxed);
  }
  return out;
}

AeuWatchdog::AeuWatchdog(uint32_t num_aeus, uint32_t strike_threshold)
    : strike_threshold_(std::max(strike_threshold, 1u)), states_(num_aeus) {}

AeuWatchdog::Observation AeuWatchdog::Observe(routing::AeuId a,
                                              uint64_t heartbeat,
                                              bool has_pending_work) {
  Observation obs;
  State& s = states_[a];
  bool advanced = !s.seen || heartbeat != s.last_heartbeat;
  s.last_heartbeat = heartbeat;
  s.seen = true;
  if (s.forced.load(std::memory_order_acquire)) {
    // Fail-stop quarantine (e.g. sealed WAL): progress is irrelevant, the
    // AEU must never be reported as recovered.
    return obs;
  }
  if (advanced || !has_pending_work) {
    // Progressing, or legitimately idle: clear strikes, maybe recover.
    s.strikes = 0;
    if (advanced && s.stalled.load(std::memory_order_relaxed)) {
      s.stalled.store(false, std::memory_order_release);
      stalled_count_.fetch_sub(1, std::memory_order_acq_rel);
      obs.newly_recovered = true;
    }
    return obs;
  }
  // Static heartbeat with work queued: strike.
  if (++s.strikes >= strike_threshold_ &&
      !s.stalled.load(std::memory_order_relaxed)) {
    s.stalled.store(true, std::memory_order_release);
    stalled_count_.fetch_add(1, std::memory_order_acq_rel);
    stall_events_.fetch_add(1, std::memory_order_relaxed);
    obs.newly_stalled = true;
  }
  return obs;
}

void AeuWatchdog::ForceStall(routing::AeuId a) {
  State& s = states_[a];
  s.forced.store(true, std::memory_order_release);
  if (!s.stalled.exchange(true, std::memory_order_acq_rel)) {
    stalled_count_.fetch_add(1, std::memory_order_acq_rel);
    stall_events_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace eris::core
