#include "core/monitor.h"

namespace eris::core {

Monitor::Monitor(uint32_t num_aeus, uint32_t num_objects)
    : num_aeus_(num_aeus),
      num_objects_(num_objects),
      cells_(static_cast<size_t>(num_aeus) * num_objects) {}

void Monitor::RecordAccess(routing::AeuId aeu, storage::ObjectId object,
                           uint64_t ops, double exec_ns) {
  Cell& c = cell(aeu, object);
  c.accesses.fetch_add(ops, std::memory_order_relaxed);
  c.exec_ns_int.fetch_add(static_cast<uint64_t>(exec_ns),
                          std::memory_order_relaxed);
}

void Monitor::RecordSize(routing::AeuId aeu, storage::ObjectId object,
                         uint64_t tuples, uint64_t bytes) {
  Cell& c = cell(aeu, object);
  c.tuples.store(tuples, std::memory_order_relaxed);
  c.bytes.store(bytes, std::memory_order_relaxed);
}

std::vector<PartitionMetrics> Monitor::SnapshotAndReset(
    storage::ObjectId object) {
  std::vector<PartitionMetrics> out(num_aeus_);
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    Cell& c = cell(a, object);
    out[a].accesses = c.accesses.exchange(0, std::memory_order_relaxed);
    out[a].exec_time_ns = static_cast<double>(
        c.exec_ns_int.exchange(0, std::memory_order_relaxed));
    out[a].tuples = c.tuples.load(std::memory_order_relaxed);
    out[a].bytes = c.bytes.load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<PartitionMetrics> Monitor::Snapshot(
    storage::ObjectId object) const {
  std::vector<PartitionMetrics> out(num_aeus_);
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    const Cell& c = cell(a, object);
    out[a].accesses = c.accesses.load(std::memory_order_relaxed);
    out[a].exec_time_ns =
        static_cast<double>(c.exec_ns_int.load(std::memory_order_relaxed));
    out[a].tuples = c.tuples.load(std::memory_order_relaxed);
    out[a].bytes = c.bytes.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace eris::core
