#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <unordered_map>

#include "common/fault_injection.h"

namespace eris::core {

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  num_aeus_ = options_.num_aeus != 0 ? options_.num_aeus
                                     : options_.topology.total_cores();
  memory_ = std::make_unique<numa::MemoryPool>(options_.topology.num_nodes());
  std::vector<numa::NodeId> aeu_nodes(num_aeus_);
  for (routing::AeuId a = 0; a < num_aeus_; ++a) aeu_nodes[a] = NodeOfAeu(a);
  router_ = std::make_unique<routing::Router>(std::move(aeu_nodes),
                                              options_.router);
  // Pre-sized for the object cap so dynamic object creation never swaps
  // the monitor under running AEUs.
  monitor_ = std::make_unique<Monitor>(num_aeus_,
                                       routing::Router::kMaxObjects);
  objects_.reserve(routing::Router::kMaxObjects);
  if (options_.sim.enabled) {
    cost_model_ =
        std::make_unique<sim::CostModel>(options_.topology, options_.sim.cost);
    usage_ = std::make_unique<sim::ResourceUsage>(options_.topology,
                                                  num_aeus_);
    router_->set_resource_usage(usage_.get());
    llc_budget_per_aeu_ = options_.sim.llc_bytes_per_node /
                          options_.topology.cores_per_node();
  }
  aeus_.reserve(num_aeus_);
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    aeus_.push_back(std::make_unique<Aeu>(a, this));
  }
}

Engine::~Engine() { Stop(); }

storage::ObjectId Engine::RegisterObject(storage::DataObjectDesc desc,
                                         storage::Key domain_hi) {
  // Objects may also be created while the engine runs (the query layer
  // materializes intermediate results as new columns); registration is
  // single-threaded per engine by contract.
  desc.id = static_cast<storage::ObjectId>(objects_.size());
  objects_.push_back(std::make_unique<storage::DataObjectDesc>(std::move(desc)));
  const storage::DataObjectDesc& d = *objects_.back();
  if (d.partitioning == storage::PartitioningKind::kRange) {
    router_->RegisterRangeObject(d, domain_hi);
    std::vector<routing::RangeEntry> entries =
        router_->range_table(d.id)->Snapshot();
    for (routing::AeuId a = 0; a < num_aeus_; ++a) {
      storage::KeyRange range{
          a == 0 ? storage::kMinKey : entries[a - 1].hi, entries[a].hi};
      aeus_[a]->AddPartition(d, range);
    }
  } else if (d.partitioning == storage::PartitioningKind::kHashed) {
    router_->RegisterHashedObject(d);
    // Every partition may hold keys from the full domain (its hash class).
    for (routing::AeuId a = 0; a < num_aeus_; ++a) {
      aeus_[a]->AddPartition(d, storage::KeyRange{});
    }
  } else {
    router_->RegisterPhysicalObject(d);
    for (routing::AeuId a = 0; a < num_aeus_; ++a) {
      aeus_[a]->AddPartition(d, storage::KeyRange{});
    }
  }
  return d.id;
}

storage::ObjectId Engine::CreateIndex(std::string name,
                                      storage::Key domain_hi,
                                      storage::PrefixTreeConfig config) {
  storage::DataObjectDesc desc =
      storage::DataObjectDesc::Index(0, std::move(name), config);
  desc.domain_hi = domain_hi;
  return RegisterObject(std::move(desc), domain_hi);
}

storage::ObjectId Engine::CreateColumn(std::string name) {
  storage::DataObjectDesc desc =
      storage::DataObjectDesc::Column(0, std::move(name));
  return RegisterObject(std::move(desc), storage::kMaxKey);
}

storage::ObjectId Engine::CreateHashedIndex(std::string name,
                                            storage::Key domain_hi,
                                            storage::PrefixTreeConfig config) {
  storage::DataObjectDesc desc =
      storage::DataObjectDesc::Index(0, std::move(name), config);
  desc.partitioning = storage::PartitioningKind::kHashed;
  desc.domain_hi = domain_hi;
  return RegisterObject(std::move(desc), domain_hi);
}

storage::ObjectId Engine::CreateHashTable(std::string name,
                                          storage::Key domain_hi) {
  storage::DataObjectDesc desc =
      storage::DataObjectDesc::Hash(0, std::move(name));
  desc.domain_hi = domain_hi;
  return RegisterObject(std::move(desc), domain_hi);
}

void Engine::Start() {
  ERIS_CHECK(!started_);
  started_ = true;
  stop_.store(false, std::memory_order_release);
  if (options_.mode == ExecutionMode::kThreads) {
    threads_.reserve(num_aeus_);
    for (routing::AeuId a = 0; a < num_aeus_; ++a) {
      threads_.emplace_back([this, a] { aeus_[a]->ThreadMain(); });
    }
    if (options_.balancer_background) {
      balancer_thread_ = std::thread([this] { BalancerThreadMain(); });
    }
  }
}

void Engine::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  if (balancer_thread_.joinable()) balancer_thread_.join();
  started_ = false;
}

bool Engine::PumpAll() {
  bool progress = false;
  for (auto& aeu : aeus_) progress |= aeu->RunLoopIteration();
  return progress;
}

void Engine::BalancerThreadMain() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.balancer.interval_ms));
    if (stop_.load(std::memory_order_acquire)) break;
    RebalanceAll();
  }
}

void Engine::Quiesce() {
  auto all_idle = [&] {
    for (routing::AeuId a = 0; a < num_aeus_; ++a) {
      if (router_->mailbox(a).PendingBytes() > 0) return false;
      if (!aeus_[a]->IsQuiescent()) return false;
    }
    return true;
  };
  int stable = 0;
  DriveUntil([&] {
    if (all_idle()) {
      ++stable;
    } else {
      stable = 0;
    }
    if (options_.mode == ExecutionMode::kThreads && started_) {
      std::this_thread::yield();
    }
    return stable >= 4;
  });
}

bool Engine::RebalanceAll() {
  bool any = false;
  for (storage::ObjectId o = 0; o < objects_.size(); ++o) {
    any |= RebalanceObject(o, options_.balancer);
  }
  return any;
}

bool Engine::RebalanceObject(storage::ObjectId object,
                             const LoadBalancerConfig& config) {
  if (config.algorithm == BalanceAlgorithm::kNone) return false;
  const storage::DataObjectDesc& desc = *objects_[object];
  std::vector<PartitionMetrics> metrics = monitor_->SnapshotAndReset(object);

  if (desc.partitioning == storage::PartitioningKind::kHashed) {
    // Hash classes cannot be rebalanced by range — the paper's point.
    return false;
  }
  if (desc.partitioning == storage::PartitioningKind::kRange) {
    routing::RangePartitionTable* table = router_->range_table(object);
    std::vector<routing::RangeEntry> entries = table->Snapshot();
    std::vector<double> metric(entries.size());
    uint64_t total = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      const PartitionMetrics& m = metrics[entries[i].owner];
      metric[i] = config.metric == BalanceMetric::kExecutionTime
                      ? m.exec_time_ns
                      : static_cast<double>(m.accesses);
      total += m.accesses;
    }
    if (total < config.min_total_accesses) return false;
    if (CoefficientOfVariation(metric) <= config.trigger_cv) return false;
    std::vector<storage::Key> new_his = ComputeTargetBoundaries(
        entries, metric, config.algorithm, config.ma_window, desc.domain_hi);
    RebalancePlan plan = BuildRangePlan(entries, new_his);
    if (plan.empty()) return false;

    // Install the new routing table first; AEUs forward straggler commands
    // for ranges they no longer own and defer commands for data still in
    // flight toward them. Commands routed with the old table can still be
    // in flight here — the perturbation point stretches that window.
    table->Replace(plan.new_entries);
    ERIS_INJECT_POINT(kBalanceApply);
    routing::AggregateSink sink;
    routing::Endpoint ep(router_.get(), routing::kInvalidAeu, 0);
    std::vector<uint8_t> payload;
    for (const RebalancePlan::AeuPlan& ap : plan.aeus) {
      payload.clear();
      BalanceRangeHeader hdr;
      hdr.new_range = ap.new_range;
      hdr.num_fetches = static_cast<uint32_t>(ap.fetches.size());
      payload.resize(sizeof(hdr) + ap.fetches.size() * sizeof(FetchInstr));
      std::memcpy(payload.data(), &hdr, sizeof(hdr));
      if (!ap.fetches.empty()) {
        std::memcpy(payload.data() + sizeof(hdr), ap.fetches.data(),
                    ap.fetches.size() * sizeof(FetchInstr));
      }
      ep.SendControl(ap.aeu, routing::CommandType::kBalanceRange, object,
                     payload, &sink);
    }
    uint64_t expected = plan.aeus.size();
    DriveUntil([&] {
      if (ep.HasPending()) ep.FlushAll();
      return sink.completed() >= expected;
    });
    return true;
  }

  // Physically partitioned object: balance tuple counts.
  std::vector<uint64_t> tuples(num_aeus_);
  uint64_t total = 0;
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    tuples[a] = metrics[a].tuples;
    total += tuples[a];
  }
  if (total == 0) return false;
  std::vector<double> metric(tuples.begin(), tuples.end());
  if (CoefficientOfVariation(metric) <= config.trigger_cv) return false;
  std::vector<uint32_t> aeu_node(num_aeus_);
  for (routing::AeuId a = 0; a < num_aeus_; ++a) aeu_node[a] = NodeOfAeu(a);
  uint64_t min_tuples = std::max<uint64_t>(1, total / num_aeus_ / 64);
  PhysicalPlan plan = BuildPhysicalPlan(tuples, aeu_node, min_tuples);
  if (plan.empty()) return false;

  routing::AggregateSink sink;
  routing::Endpoint ep(router_.get(), routing::kInvalidAeu, 0);
  std::vector<uint8_t> payload;
  for (const PhysicalPlan::AeuPlan& ap : plan.aeus) {
    payload.clear();
    BalancePhysicalHeader hdr;
    hdr.num_fetches = static_cast<uint32_t>(ap.fetches.size());
    payload.resize(sizeof(hdr) + ap.fetches.size() * sizeof(PhysFetchInstr));
    std::memcpy(payload.data(), &hdr, sizeof(hdr));
    std::memcpy(payload.data() + sizeof(hdr), ap.fetches.data(),
                ap.fetches.size() * sizeof(PhysFetchInstr));
    ep.SendControl(ap.aeu, routing::CommandType::kBalancePhysical, object,
                   payload, &sink);
  }
  uint64_t expected = plan.aeus.size();
  DriveUntil([&] {
    if (ep.HasPending()) ep.FlushAll();
    return sink.completed() >= expected;
  });
  return true;
}

std::string Engine::StatsReport() {
  std::ostringstream os;
  os << "engine: " << options_.topology.name() << ", " << num_aeus_
     << " AEUs, "
     << (options_.mode == ExecutionMode::kThreads ? "threads" : "simulated")
     << " mode\n";
  for (numa::NodeId node = 0; node < options_.topology.num_nodes(); ++node) {
    numa::MemoryStats m = memory_->manager(node).stats();
    os << "  node " << node << ": " << m.bytes_in_use() / 1024
       << " KiB in use, " << m.bytes_reserved / 1024 << " KiB reserved, "
       << m.allocations << " allocations\n";
  }
  for (storage::ObjectId o = 0; o < objects_.size(); ++o) {
    const storage::DataObjectDesc& d = *objects_[o];
    uint64_t tuples = 0;
    uint64_t bytes = 0;
    for (routing::AeuId a = 0; a < num_aeus_; ++a) {
      tuples += aeus_[a]->partition(o)->tuple_count();
      bytes += aeus_[a]->partition(o)->memory_bytes();
    }
    os << "  object " << o << " '" << d.name << "': " << tuples
       << " tuples, " << bytes / 1024 << " KiB";
    if (d.partitioning == storage::PartitioningKind::kRange) {
      os << ", " << router_->range_table(o)->size() << " ranges";
    } else if (d.partitioning == storage::PartitioningKind::kPhysical) {
      os << ", " << router_->bitmap_table(o)->count() << " holders";
    } else {
      os << ", hash partitioned";
    }
    os << "\n";
  }
  uint64_t commands = 0;
  uint64_t forwarded = 0;
  uint64_t deferred = 0;
  uint64_t coalesced = 0;
  uint64_t links = 0;
  uint64_t copies = 0;
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    const AeuLoopStats& st = aeus_[a]->loop_stats();
    commands += st.commands_processed;
    forwarded += st.commands_forwarded;
    deferred += st.commands_deferred;
    coalesced += st.scans_coalesced;
    links += st.link_transfers;
    copies += st.copy_transfers;
  }
  os << "  AEUs: " << commands << " commands processed, " << forwarded
     << " forwarded, " << deferred << " deferred, " << coalesced
     << " scans coalesced, " << links << " link / " << copies
     << " copy transfers\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Engine::Session::Session(Engine* engine, numa::NodeId node)
    : engine_(engine),
      endpoint_(&engine->router(), routing::kInvalidAeu, node) {}

std::unique_ptr<Engine::Session> Engine::CreateSession() {
  numa::NodeId node = static_cast<numa::NodeId>(
      session_counter_.fetch_add(1, std::memory_order_relaxed) %
      options_.topology.num_nodes());
  return std::make_unique<Session>(this, node);
}

std::unique_ptr<Engine::Session> Engine::CreateSessionOnNode(
    numa::NodeId node) {
  return std::make_unique<Session>(this, node);
}

void Engine::Session::Wait(uint64_t expected) {
  endpoint_.FlushAll();
  engine_->DriveUntil([&] {
    if (endpoint_.HasPending()) endpoint_.FlushAll();
    return sink_.completed() >= expected;
  });
}

uint64_t Engine::Session::Lookup(storage::ObjectId object,
                                 std::span<const storage::Key> keys) {
  sink_.Reset();
  size_t expected = endpoint_.SendLookupBatch(object, keys, &sink_);
  Wait(expected);
  return sink_.hits();
}

namespace {

/// Sink collecting per-key lookup results (for LookupValues).
class CollectSink : public routing::ResultSink {
 public:
  void OnLookupBatch(std::span<const storage::Key> keys,
                     std::span<const storage::Value> values,
                     std::span<const bool> found) override {
    std::lock_guard<SpinLock> guard(lock_);
    for (size_t i = 0; i < keys.size(); ++i) {
      results_[keys[i]] =
          found[i] ? std::optional<storage::Value>(values[i]) : std::nullopt;
    }
  }
  void OnCommandComplete(uint64_t units) override {
    completed_.fetch_add(units, std::memory_order_release);
  }
  uint64_t completed() const {
    return completed_.load(std::memory_order_acquire);
  }
  std::optional<storage::Value> Get(storage::Key key) const {
    auto it = results_.find(key);
    return it == results_.end() ? std::nullopt : it->second;
  }

 private:
  SpinLock lock_;
  std::unordered_map<storage::Key, std::optional<storage::Value>> results_;
  std::atomic<uint64_t> completed_{0};
};

}  // namespace

std::vector<std::optional<storage::Value>> Engine::Session::LookupValues(
    storage::ObjectId object, std::span<const storage::Key> keys) {
  CollectSink sink;
  size_t expected = endpoint_.SendLookupBatch(object, keys, &sink);
  endpoint_.FlushAll();
  engine_->DriveUntil([&] {
    if (endpoint_.HasPending()) endpoint_.FlushAll();
    return sink.completed() >= expected;
  });
  std::vector<std::optional<storage::Value>> out;
  out.reserve(keys.size());
  for (storage::Key k : keys) out.push_back(sink.Get(k));
  return out;
}

uint64_t Engine::Session::Insert(storage::ObjectId object,
                                 std::span<const routing::KeyValue> kvs) {
  sink_.Reset();
  size_t expected = endpoint_.SendWriteBatch(
      routing::CommandType::kInsertBatch, object, kvs, &sink_);
  Wait(expected);
  return sink_.hits();
}

uint64_t Engine::Session::Upsert(storage::ObjectId object,
                                 std::span<const routing::KeyValue> kvs) {
  sink_.Reset();
  size_t expected = endpoint_.SendWriteBatch(
      routing::CommandType::kUpsertBatch, object, kvs, &sink_);
  Wait(expected);
  return sink_.hits();
}

uint64_t Engine::Session::Erase(storage::ObjectId object,
                                std::span<const storage::Key> keys) {
  sink_.Reset();
  size_t expected = endpoint_.SendEraseBatch(object, keys, &sink_);
  Wait(expected);
  return sink_.hits();
}

void Engine::Session::Append(storage::ObjectId object,
                             std::span<const storage::Value> values) {
  sink_.Reset();
  size_t expected = endpoint_.SendAppendBatch(object, values, &sink_);
  Wait(expected);
}

Engine::Session::ColumnStats Engine::Session::ScanStats(
    storage::ObjectId object, storage::Value lo, storage::Value hi) {
  sink_.Reset();
  routing::ScanParams params;
  params.lo = lo;
  params.hi = hi;
  params.snapshot_ts = engine_->oracle().ReadTs();
  SnapshotTracker::Pin pin(&engine_->snapshots(), params.snapshot_ts);
  size_t expected = endpoint_.SendScanStats(object, params, &sink_);
  Wait(expected);
  ColumnStats stats;
  stats.rows = sink_.hits();
  stats.sum = sink_.sum();
  stats.min = sink_.min();
  stats.max = sink_.max();
  stats.avg = stats.rows > 0
                  ? static_cast<double>(stats.sum) /
                        static_cast<double>(stats.rows)
                  : 0.0;
  return stats;
}

ScanResult Engine::Session::ScanColumn(storage::ObjectId object,
                                       storage::Value lo, storage::Value hi) {
  sink_.Reset();
  routing::ScanParams params;
  params.lo = lo;
  params.hi = hi;
  params.snapshot_ts = engine_->oracle().ReadTs();
  // Pin the snapshot so idle-time MVCC maintenance cannot reclaim the
  // versions this scan reads.
  SnapshotTracker::Pin pin(&engine_->snapshots(), params.snapshot_ts);
  size_t expected = endpoint_.SendScanColumn(object, params, &sink_);
  Wait(expected);
  return ScanResult{sink_.hits(), sink_.sum()};
}

ScanResult Engine::Session::ScanIndexRange(storage::ObjectId object,
                                           storage::Key key_lo,
                                           storage::Key key_hi) {
  sink_.Reset();
  routing::ScanParams params;  // no value filter
  size_t expected =
      endpoint_.SendScanIndexRange(object, key_lo, key_hi, params, &sink_);
  Wait(expected);
  return ScanResult{sink_.hits(), sink_.sum()};
}

void Engine::Session::Fence() {
  sink_.Reset();
  uint64_t expected = 0;
  for (routing::AeuId a = 0; a < engine_->num_aeus(); ++a) {
    expected += endpoint_.SendControl(a, routing::CommandType::kFence, 0, {},
                                      &sink_);
  }
  Wait(expected);
}

}  // namespace eris::core
