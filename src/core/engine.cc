#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "durability/wal.h"

namespace eris::core {

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  num_aeus_ = options_.num_aeus != 0 ? options_.num_aeus
                                     : options_.topology.total_cores();
  // Wall-clock pacing of delivery backoff only makes sense with real AEU
  // threads; a simulated engine pumps the loops inline and must never gate
  // progress on elapsed time.
  options_.router.retry.pace_with_time =
      options_.mode == ExecutionMode::kThreads;
  memory_ = std::make_unique<numa::MemoryPool>(options_.topology.num_nodes());
  std::vector<numa::NodeId> aeu_nodes(num_aeus_);
  for (routing::AeuId a = 0; a < num_aeus_; ++a) aeu_nodes[a] = NodeOfAeu(a);
  router_ = std::make_unique<routing::Router>(std::move(aeu_nodes),
                                              options_.router);
  // Pre-sized for the object cap so dynamic object creation never swaps
  // the monitor under running AEUs.
  monitor_ = std::make_unique<Monitor>(num_aeus_,
                                       routing::Router::kMaxObjects);
  objects_.reserve(routing::Router::kMaxObjects);
  if (options_.sim.enabled) {
    cost_model_ =
        std::make_unique<sim::CostModel>(options_.topology, options_.sim.cost);
    usage_ = std::make_unique<sim::ResourceUsage>(options_.topology,
                                                  num_aeus_);
    router_->set_resource_usage(usage_.get());
    llc_budget_per_aeu_ = options_.sim.llc_bytes_per_node /
                          options_.topology.cores_per_node();
  }
  aeus_.reserve(num_aeus_);
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    aeus_.push_back(std::make_unique<Aeu>(a, this));
  }
  admission_ = std::make_unique<AdmissionController>(
      options_.overload.max_inflight_units);
  watchdog_ = std::make_unique<AeuWatchdog>(num_aeus_,
                                            options_.overload.watchdog_strikes);
  wal_sealed_flags_ = std::make_unique<std::atomic<bool>[]>(num_aeus_);
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    wal_sealed_flags_[a].store(false, std::memory_order_relaxed);
  }
  if (options_.durability.enabled) {
    ERIS_CHECK(!options_.durability.dir.empty())
        << "durability enabled without a directory";
    durability_ = std::make_unique<durability::DurabilityManager>(
        options_.durability, num_aeus_);
  }
}

Engine::~Engine() { Stop(); }

storage::ObjectId Engine::RegisterObject(storage::DataObjectDesc desc,
                                         storage::Key domain_hi) {
  // Objects may also be created while the engine runs (the query layer
  // materializes intermediate results as new columns); registration is
  // single-threaded per engine by contract.
  desc.id = static_cast<storage::ObjectId>(objects_.size());
  objects_.push_back(std::make_unique<storage::DataObjectDesc>(std::move(desc)));
  const storage::DataObjectDesc& d = *objects_.back();
  if (d.partitioning == storage::PartitioningKind::kRange) {
    router_->RegisterRangeObject(d, domain_hi);
    std::vector<routing::RangeEntry> entries =
        router_->range_table(d.id)->Snapshot();
    for (routing::AeuId a = 0; a < num_aeus_; ++a) {
      storage::KeyRange range{
          a == 0 ? storage::kMinKey : entries[a - 1].hi, entries[a].hi};
      aeus_[a]->AddPartition(d, range);
    }
  } else if (d.partitioning == storage::PartitioningKind::kHashed) {
    router_->RegisterHashedObject(d);
    // Every partition may hold keys from the full domain (its hash class).
    for (routing::AeuId a = 0; a < num_aeus_; ++a) {
      aeus_[a]->AddPartition(d, storage::KeyRange{});
    }
  } else {
    router_->RegisterPhysicalObject(d);
    for (routing::AeuId a = 0; a < num_aeus_; ++a) {
      aeus_[a]->AddPartition(d, storage::KeyRange{});
    }
  }
  return d.id;
}

storage::ObjectId Engine::CreateIndex(std::string name,
                                      storage::Key domain_hi,
                                      storage::PrefixTreeConfig config) {
  storage::DataObjectDesc desc =
      storage::DataObjectDesc::Index(0, std::move(name), config);
  desc.domain_hi = domain_hi;
  return RegisterObject(std::move(desc), domain_hi);
}

storage::ObjectId Engine::CreateColumn(std::string name) {
  storage::DataObjectDesc desc =
      storage::DataObjectDesc::Column(0, std::move(name));
  return RegisterObject(std::move(desc), storage::kMaxKey);
}

storage::ObjectId Engine::CreateHashedIndex(std::string name,
                                            storage::Key domain_hi,
                                            storage::PrefixTreeConfig config) {
  storage::DataObjectDesc desc =
      storage::DataObjectDesc::Index(0, std::move(name), config);
  desc.partitioning = storage::PartitioningKind::kHashed;
  desc.domain_hi = domain_hi;
  return RegisterObject(std::move(desc), domain_hi);
}

storage::ObjectId Engine::CreateHashTable(std::string name,
                                          storage::Key domain_hi) {
  storage::DataObjectDesc desc =
      storage::DataObjectDesc::Hash(0, std::move(name));
  desc.domain_hi = domain_hi;
  return RegisterObject(std::move(desc), domain_hi);
}

void Engine::Start() {
  ERIS_CHECK(!started_);
  if (durability_ != nullptr && !recovered_) {
    Status st = Recover();
    ERIS_CHECK(st.ok()) << "recovery failed: " << st.message();
  }
  started_ = true;
  stop_.store(false, std::memory_order_release);
  if (options_.mode == ExecutionMode::kThreads) {
    threads_.reserve(num_aeus_);
    for (routing::AeuId a = 0; a < num_aeus_; ++a) {
      threads_.emplace_back([this, a] { aeus_[a]->ThreadMain(); });
    }
    if (options_.balancer_background) {
      balancer_thread_ = std::thread([this] { BalancerThreadMain(); });
    }
    if (options_.overload.watchdog) {
      watchdog_thread_ = std::thread([this] { WatchdogThreadMain(); });
    }
    if (durability_ != nullptr &&
        options_.durability.scrub_interval_ms > 0) {
      scrubber_thread_ = std::thread([this] { ScrubberThreadMain(); });
    }
  }
}

void Engine::Stop() {
  if (started_) {
    // Drain phase (DESIGN.md §14): give in-flight work a bounded window to
    // complete — and with a WAL attached, to group-commit — before the
    // threads are signalled. A wedged engine just times out here; shutdown
    // never blocks indefinitely.
    TryQuiesce(options_.stop_drain_ms);
    stop_.store(true, std::memory_order_release);
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
    if (balancer_thread_.joinable()) balancer_thread_.join();
    if (watchdog_thread_.joinable()) watchdog_thread_.join();
    if (scrubber_thread_.joinable()) scrubber_thread_.join();
    started_ = false;
  }
  if (durability_ != nullptr && recovered_) {
    // Commit any residue (simulated engines never spawned threads, and a
    // thread's final iteration may still have raced a late submit).
    for (auto& aeu : aeus_) aeu->FlushWal();
  }
}

bool Engine::PumpAll() {
  bool progress = false;
  for (auto& aeu : aeus_) progress |= aeu->RunLoopIteration();
  return progress;
}

void Engine::BalancerThreadMain() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.balancer.interval_ms));
    if (stop_.load(std::memory_order_acquire)) break;
    RebalanceAll();
  }
}

void Engine::WatchdogThreadMain() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.overload.watchdog_interval_ms));
    if (stop_.load(std::memory_order_acquire)) break;
    CheckAeuHealth();
  }
}

void Engine::ScrubberThreadMain() {
  // Cold-state scrubber (DESIGN.md §15): periodically CRC-verify snapshot
  // files and sealed/cold WAL segments so bit rot is found — and corrupt
  // cold snapshots quarantined — before recovery ever depends on them.
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.durability.scrub_interval_ms));
    if (stop_.load(std::memory_order_acquire)) break;
    ScrubReport report;
    Status st = ScrubStorage(&report);
    if (!st.ok() || !report.clean()) {
      ERIS_DLOG(Warning) << "storage scrub: " << report.corrupt_files
                         << " corrupt files, " << report.snapshots_quarantined
                         << " snapshots quarantined, " << report.wal_torn_tails
                         << " torn WAL tails: " << st.message();
    }
  }
}

void Engine::CheckAeuHealth() {
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    bool pending = router_->mailbox(a).PendingBytes() > 0 ||
                   !aeus_[a]->IsQuiescent();
    AeuWatchdog::Observation obs =
        watchdog_->Observe(a, aeus_[a]->heartbeat(), pending);
    if (obs.newly_stalled) {
      router_->SetAeuStalled(a, true);
      ERIS_DLOG(Warning) << "watchdog: AEU " << a
                         << " stalled (heartbeat static with pending work); "
                            "partitions flagged, routed commands fail fast";
    } else if (obs.newly_recovered) {
      // Sticky fail-stop: an AEU whose WAL sealed must never be unsealed,
      // however lively its heartbeat looks (the watchdog's forced-stall bit
      // already suppresses this, but the flag here guards the router seal
      // independently).
      if (!WalSealed(a)) {
        router_->SetAeuStalled(a, false);
        ERIS_DLOG(Info) << "watchdog: AEU " << a << " recovered";
      }
    }
  }
}

void Engine::OnWalSealed(routing::AeuId a, const Status& cause) {
  if (wal_sealed_flags_[a].exchange(true, std::memory_order_acq_rel)) {
    return;  // already quarantined
  }
  // Quarantine through the existing stall machinery: the router seals the
  // mailbox (routed commands fail fast, Quiesce skips the AEU) and the
  // watchdog pins the stall so no health pass ever reports recovery.
  router_->SetAeuStalled(a, true);
  watchdog_->ForceStall(a);
  ERIS_DLOG(Warning) << "AEU " << a
                     << " WAL sealed fail-stop: " << cause.message();
  EnterDegradedMode("AEU " + std::to_string(a) +
                    " WAL sealed: " + std::string(cause.message()));
}

bool Engine::AnyWalSealed() const {
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    if (WalSealed(a)) return true;
  }
  return false;
}

std::string Engine::degraded_reason() const {
  std::lock_guard<SpinLock> guard(degraded_lock_);
  return degraded_reason_;
}

void Engine::EnterDegradedMode(std::string reason) {
  {
    std::lock_guard<SpinLock> guard(degraded_lock_);
    if (degraded_.load(std::memory_order_relaxed)) return;  // keep 1st cause
    degraded_reason_ = std::move(reason);
    degraded_.store(true, std::memory_order_release);
  }
  ERIS_DLOG(Warning) << "engine degraded to read-only: " << degraded_reason();
}

Status Engine::ScrubStorage(ScrubReport* report) {
  *report = ScrubReport{};
  if (durability_ == nullptr) return Status::Ok();
  Status first_bad = Status::Ok();
  uint64_t live_epoch = 0;
  Status st = durability_->ReadCurrentEpoch(&live_epoch);
  if (!st.ok()) {
    // An unreadable manifest is itself a scrub finding, not a crash.
    first_bad = std::move(st);
    live_epoch = 0;
  }
  for (uint64_t epoch : durability_->ListSnapshotEpochs()) {
    ++report->snapshots_checked;
    uint64_t files = 0;
    uint64_t corrupt = 0;
    st = durability_->VerifySnapshot(epoch, &files, &corrupt);
    report->files_checked += files;
    report->corrupt_files += corrupt;
    if (st.ok()) continue;
    if (first_bad.ok()) first_bad = st;
    if (epoch != live_epoch) {
      // Cold (non-live) snapshot: move it aside so recovery and
      // RemoveOldSnapshots never touch it again.
      if (durability_->QuarantineSnapshot(epoch).ok()) {
        ++report->snapshots_quarantined;
      }
    }
    // The live snapshot stays in place even when corrupt: it is the only
    // full copy, and recovery will surface the CRC failure typed.
  }
  // WAL files are scanned only while cold: before Start() armed the
  // writers, or after the writer sealed (both leave the file static).
  // A torn tail on a *sealed* log is expected — it is the partially
  // written group the seal discarded — so only unsealed logs count.
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    bool cold = !started_ || WalSealed(a);
    if (!cold) continue;
    ++report->wals_checked;
    durability::WalReplayResult replay;
    st = durability::ReplayWal(
        durability_->WalPath(a), ~0ull,
        [](uint64_t, std::span<const uint8_t>) {}, &replay);
    if (!st.ok()) {
      if (first_bad.ok()) first_bad = st;
      continue;
    }
    if (replay.torn && !WalSealed(a)) ++report->wal_torn_tails;
  }
  return first_bad;
}

void Engine::RetireSink(std::unique_ptr<routing::AggregateSink> sink) {
  std::lock_guard<SpinLock> guard(retired_lock_);
  retired_sinks_.push_back(std::move(sink));
}

void Engine::Quiesce() {
  auto all_idle = [&] {
    for (routing::AeuId a = 0; a < num_aeus_; ++a) {
      if (router_->IsAeuStalled(a)) continue;
      if (router_->mailbox(a).PendingBytes() > 0) return false;
      if (!aeus_[a]->IsQuiescent()) return false;
    }
    return true;
  };
  int stable = 0;
  DriveUntil([&] {
    if (all_idle()) {
      ++stable;
    } else {
      stable = 0;
    }
    if (options_.mode == ExecutionMode::kThreads && started_) {
      std::this_thread::yield();
    }
    return stable >= 4;
  });
}

bool Engine::TryQuiesce(uint64_t timeout_ms) {
  auto all_idle = [&] {
    for (routing::AeuId a = 0; a < num_aeus_; ++a) {
      if (router_->IsAeuStalled(a)) continue;
      if (router_->mailbox(a).PendingBytes() > 0) return false;
      if (!aeus_[a]->IsQuiescent()) return false;
    }
    return true;
  };
  const bool inline_pump =
      options_.mode == ExecutionMode::kSimulated || !started_;
  const uint64_t deadline = MonotonicNanos() + timeout_ms * 1'000'000ull;
  uint64_t idle_passes = 0;
  int stable = 0;
  while (stable < 4) {
    if (all_idle()) {
      ++stable;
    } else {
      stable = 0;
    }
    if (inline_pump) {
      // A simulated engine makes all its progress here, so a no-progress
      // pass budget replaces the wall clock.
      idle_passes = PumpAll() ? 0 : idle_passes + 1;
      if (stable == 0 && idle_passes > (1u << 16)) return false;
    } else {
      std::this_thread::yield();
      // Only give up while work is actually outstanding: once the engine
      // is idle, let the stability count finish.
      if (stable == 0 && MonotonicNanos() > deadline) return false;
    }
  }
  return true;
}

bool Engine::RebalanceAll() {
  bool any = false;
  for (storage::ObjectId o = 0; o < objects_.size(); ++o) {
    any |= RebalanceObject(o, options_.balancer);
  }
  return any;
}

bool Engine::RebalanceObject(storage::ObjectId object,
                             const LoadBalancerConfig& config) {
  if (config.algorithm == BalanceAlgorithm::kNone) return false;
  // A degraded engine stops moving partitions: transfers would target
  // quarantined AEUs and generate WAL effects a sealed log cannot persist.
  if (degraded()) return false;
  const storage::DataObjectDesc& desc = *objects_[object];
  std::vector<PartitionMetrics> metrics = monitor_->SnapshotAndReset(object);

  if (desc.partitioning == storage::PartitioningKind::kHashed) {
    // Hash classes cannot be rebalanced by range — the paper's point.
    return false;
  }
  if (desc.partitioning == storage::PartitioningKind::kRange) {
    routing::RangePartitionTable* table = router_->range_table(object);
    std::vector<routing::RangeEntry> entries = table->Snapshot();
    std::vector<double> metric(entries.size());
    uint64_t total = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      const PartitionMetrics& m = metrics[entries[i].owner];
      metric[i] = config.metric == BalanceMetric::kExecutionTime
                      ? m.exec_time_ns
                      : static_cast<double>(m.accesses);
      total += m.accesses;
    }
    if (total < config.min_total_accesses) return false;
    if (CoefficientOfVariation(metric) <= config.trigger_cv) return false;
    std::vector<storage::Key> new_his = ComputeTargetBoundaries(
        entries, metric, config.algorithm, config.ma_window, desc.domain_hi);
    RebalancePlan plan = BuildRangePlan(entries, new_his);
    if (plan.empty()) return false;

    // Install the new routing table first; AEUs forward straggler commands
    // for ranges they no longer own and defer commands for data still in
    // flight toward them. Commands routed with the old table can still be
    // in flight here — the perturbation point stretches that window.
    table->Replace(plan.new_entries);
    ERIS_INJECT_POINT(kBalanceApply);
    routing::AggregateSink sink;
    routing::Endpoint ep(router_.get(), routing::kInvalidAeu, 0);
    std::vector<uint8_t> payload;
    for (const RebalancePlan::AeuPlan& ap : plan.aeus) {
      payload.clear();
      BalanceRangeHeader hdr;
      hdr.new_range = ap.new_range;
      hdr.num_fetches = static_cast<uint32_t>(ap.fetches.size());
      payload.resize(sizeof(hdr) + ap.fetches.size() * sizeof(FetchInstr));
      std::memcpy(payload.data(), &hdr, sizeof(hdr));
      if (!ap.fetches.empty()) {
        std::memcpy(payload.data() + sizeof(hdr), ap.fetches.data(),
                    ap.fetches.size() * sizeof(FetchInstr));
      }
      ep.SendControl(ap.aeu, routing::CommandType::kBalanceRange, object,
                     payload, &sink);
    }
    uint64_t expected = plan.aeus.size();
    DriveUntil([&] {
      if (ep.HasPending()) ep.FlushAll();
      return sink.completed() >= expected;
    });
    return true;
  }

  // Physically partitioned object: balance tuple counts.
  std::vector<uint64_t> tuples(num_aeus_);
  uint64_t total = 0;
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    tuples[a] = metrics[a].tuples;
    total += tuples[a];
  }
  if (total == 0) return false;
  std::vector<double> metric(tuples.begin(), tuples.end());
  if (CoefficientOfVariation(metric) <= config.trigger_cv) return false;
  std::vector<uint32_t> aeu_node(num_aeus_);
  for (routing::AeuId a = 0; a < num_aeus_; ++a) aeu_node[a] = NodeOfAeu(a);
  uint64_t min_tuples = std::max<uint64_t>(1, total / num_aeus_ / 64);
  PhysicalPlan plan = BuildPhysicalPlan(tuples, aeu_node, min_tuples);
  if (plan.empty()) return false;

  routing::AggregateSink sink;
  routing::Endpoint ep(router_.get(), routing::kInvalidAeu, 0);
  std::vector<uint8_t> payload;
  for (const PhysicalPlan::AeuPlan& ap : plan.aeus) {
    payload.clear();
    BalancePhysicalHeader hdr;
    hdr.num_fetches = static_cast<uint32_t>(ap.fetches.size());
    payload.resize(sizeof(hdr) + ap.fetches.size() * sizeof(PhysFetchInstr));
    std::memcpy(payload.data(), &hdr, sizeof(hdr));
    std::memcpy(payload.data() + sizeof(hdr), ap.fetches.data(),
                ap.fetches.size() * sizeof(PhysFetchInstr));
    ep.SendControl(ap.aeu, routing::CommandType::kBalancePhysical, object,
                   payload, &sink);
  }
  uint64_t expected = plan.aeus.size();
  DriveUntil([&] {
    if (ep.HasPending()) ep.FlushAll();
    return sink.completed() >= expected;
  });
  return true;
}

// ---------------------------------------------------------------------------
// Durability (DESIGN.md §14)
// ---------------------------------------------------------------------------

Status Engine::Recover() {
  if (durability_ == nullptr) {
    return Status::FailedPrecondition("durability is not enabled");
  }
  if (recovered_) return Status::Ok();
  ERIS_CHECK(!started_) << "Recover() must run before Start()";
  Status st = durability_->EnsureDir();
  if (!st.ok()) return st;
  uint64_t epoch = 0;
  st = durability_->ReadCurrentEpoch(&epoch);
  if (!st.ok()) return st;
  std::vector<uint64_t> watermark(num_aeus_, 0);
  std::vector<uint64_t> next_lsn(num_aeus_, 1);

  if (epoch != 0) {
    durability::SnapshotMeta meta;
    st = durability_->ReadSnapshotMeta(epoch, &meta);
    if (!st.ok()) return st;
    // The caller re-registers the schema before recovering; refuse to
    // restore a snapshot into a differently-shaped engine.
    if (meta.num_aeus != num_aeus_ ||
        meta.objects.size() != objects_.size()) {
      return Status::FailedPrecondition(
          "snapshot topology/schema does not match this engine");
    }
    for (size_t o = 0; o < objects_.size(); ++o) {
      const storage::DataObjectDesc& d = *objects_[o];
      if (meta.objects[o].container != static_cast<uint32_t>(d.container) ||
          meta.objects[o].partitioning !=
              static_cast<uint32_t>(d.partitioning)) {
        return Status::FailedPrecondition(
            "snapshot schema mismatch for object '" + d.name + "'");
      }
    }
    watermark = meta.wal_watermark;
    next_lsn = meta.wal_next_lsn;
    std::vector<uint8_t> payload;
    for (const durability::PartitionMeta& pm : meta.partitions) {
      if (pm.object >= objects_.size() || pm.aeu >= num_aeus_) {
        return Status::IoError("snapshot references an unknown partition");
      }
      st = durability_->ReadPartitionFile(epoch, pm, &payload);
      if (!st.ok()) return st;
      const storage::DataObjectDesc& d = *objects_[pm.object];
      numa::NodeId node = NodeOfAeu(pm.aeu);
      uint64_t salt = Mix64((static_cast<uint64_t>(d.id) << 32) | pm.aeu);
      Result<storage::Partition> rebuilt = storage::Partition::Rebuild(
          d, &memory_->manager(node), pm.range, salt, payload);
      if (!rebuilt.ok()) return rebuilt.status();
      aeus_[pm.aeu]->ReplacePartition(pm.object,
                                      std::move(rebuilt).value());
      // Rebuild refills the raw column without MVCC frontier entries;
      // publish the restored tuples at a fresh timestamp so scans see them.
      aeus_[pm.aeu]->partition(pm.object)->ColumnPublish(
          oracle_.NextWriteTs());
    }
  }

  // Replay each AEU's log tail. Only the locally applied ("mine") effect
  // of every command was logged, so per-AEU replay is a pure function of
  // that AEU's own log — cross-AEU ordering cannot matter.
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    durability::WalReplayResult rr;
    st = durability::ReplayWal(
        durability_->WalPath(a), watermark[a],
        [&](uint64_t, std::span<const uint8_t> body) {
          ApplyWalRecord(a, body);
        },
        &rr);
    if (!st.ok()) return st;
    next_lsn[a] = std::max(next_lsn[a], rr.next_lsn);
    st = durability_->OpenWal(a, next_lsn[a], rr.valid_end);
    if (!st.ok()) return st;
    aeus_[a]->set_wal(durability_->wal(a));
  }

  st = RebuildRangeTables();
  if (!st.ok()) return st;

  // Seed the monitor so the balancer restarts from real partition sizes.
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    for (storage::ObjectId o = 0; o < objects_.size(); ++o) {
      storage::Partition* part = aeus_[a]->partition(o);
      monitor_->RecordSize(a, o, part->tuple_count(), part->memory_bytes());
    }
  }
  snapshot_epoch_ = epoch;
  recovered_ = true;
  return Status::Ok();
}

void Engine::ApplyWalRecord(routing::AeuId a, std::span<const uint8_t> body) {
  if (body.size() < sizeof(routing::CommandHeader)) return;
  routing::CommandView cmd = routing::DecodeCommand(body.data());
  if (body.size() < sizeof(routing::CommandHeader) + cmd.header.payload_bytes) {
    return;  // cannot happen behind an intact CRC; never read past the body
  }
  // Objects beyond the re-registered schema are query-layer intermediates:
  // transient by design, their effects are dropped.
  if (cmd.header.object >= objects_.size()) return;
  storage::Partition* part = aeus_[a]->partition(cmd.header.object);
  switch (cmd.header.type) {
    case routing::CommandType::kInsertBatch:
      for (const routing::KeyValue& kv : cmd.PayloadAs<routing::KeyValue>()) {
        part->Insert(kv.key, kv.value);
      }
      break;
    case routing::CommandType::kUpsertBatch:
      for (const routing::KeyValue& kv : cmd.PayloadAs<routing::KeyValue>()) {
        part->Upsert(kv.key, kv.value);
      }
      break;
    case routing::CommandType::kEraseBatch:
      for (storage::Key k : cmd.PayloadAs<storage::Key>()) part->Erase(k);
      break;
    case routing::CommandType::kAppendBatch: {
      uint64_t ts = oracle_.NextWriteTs();
      for (storage::Value v : cmd.PayloadAs<storage::Value>()) {
        part->ColumnAppend(v, ts);
      }
      break;
    }
    case routing::CommandType::kWalExtractRange: {
      storage::KeyRange r = cmd.PayloadAs<storage::KeyRange>()[0];
      // Donor-side balance effect; the moved piece replays as plain writes
      // from the receiving AEU's own log.
      (void)part->ExtractRange(r.lo, r.hi);
      break;
    }
    case routing::CommandType::kWalSplitTail: {
      uint64_t tuples = cmd.PayloadAs<uint64_t>()[0];
      (void)part->SplitOffTail(std::min(tuples, part->tuple_count()));
      break;
    }
    case routing::CommandType::kWalSetRange:
      part->set_range(cmd.PayloadAs<storage::KeyRange>()[0]);
      break;
    default:
      break;  // reads and control commands are never logged
  }
}

Status Engine::RebuildRangeTables() {
  for (storage::ObjectId o = 0; o < objects_.size(); ++o) {
    const storage::DataObjectDesc& d = *objects_[o];
    if (d.partitioning != storage::PartitioningKind::kRange) continue;
    struct Owned {
      storage::KeyRange range;
      routing::AeuId owner;
    };
    std::vector<Owned> owned;
    for (routing::AeuId a = 0; a < num_aeus_; ++a) {
      storage::KeyRange r = aeus_[a]->partition(o)->range();
      if (r.Empty()) continue;  // fully drained by balancing
      owned.push_back(Owned{r, a});
    }
    if (owned.empty()) {
      return Status::Internal("no recovered ranges for object '" + d.name +
                              "'");
    }
    std::sort(owned.begin(), owned.end(),
              [](const Owned& x, const Owned& y) {
                return x.range.lo < y.range.lo;
              });
    if (owned.front().range.lo != storage::kMinKey ||
        owned.back().range.hi != storage::kMaxKey) {
      return Status::Internal("recovered ranges do not cover the domain of '" +
                              d.name + "'");
    }
    std::vector<routing::RangeEntry> entries;
    entries.reserve(owned.size());
    for (size_t i = 0; i < owned.size(); ++i) {
      if (i + 1 < owned.size() &&
          owned[i].range.hi != owned[i + 1].range.lo) {
        return Status::Internal("recovered ranges of '" + d.name +
                                "' are not contiguous");
      }
      entries.push_back(routing::RangeEntry{owned[i].range.hi,
                                            owned[i].owner});
    }
    router_->range_table(o)->Replace(entries);
  }
  return Status::Ok();
}

Status Engine::Snapshot() {
  if (durability_ == nullptr) {
    return Status::FailedPrecondition("durability is not enabled");
  }
  ERIS_CHECK(recovered_) << "Snapshot() before Recover()";
  if (AnyWalSealed()) {
    // The sealed AEU's recent effects never reached its log, so the
    // in-memory state is ahead of anything provably durable; flattening it
    // would publish unlogged (possibly un-acknowledged) writes. The engine
    // must restart and recover before it snapshots again.
    return Status::Unavailable("cannot snapshot: a WAL sealed fail-stop")
        .WithDetail(StatusDetail::kWalSealed, degraded_reason());
  }
  // Reach a consistent point: no in-flight commands, no balancing residue.
  Quiesce();
  bool paused = false;
  if (options_.mode == ExecutionMode::kThreads && started_) {
    pause_.store(true, std::memory_order_release);
    while (paused_count_.load(std::memory_order_acquire) <
           static_cast<uint32_t>(threads_.size())) {
      std::this_thread::yield();
    }
    paused = true;
  }
  Status st = WriteSnapshotFiles();
  if (paused) pause_.store(false, std::memory_order_release);
  if (!st.ok()) {
    // A failed snapshot (ENOSPC, EIO) leaves the previous epoch intact but
    // means the disk can no longer be trusted to absorb writes: degrade.
    // The condition is retryable — freeing space and snapshotting again
    // clears it below.
    EnterDegradedMode("snapshot failed: " + std::string(st.message()));
    return st;
  }
  if (degraded() && !AnyWalSealed()) {
    // Space-only degradation heals once a full snapshot round-trips.
    {
      std::lock_guard<SpinLock> guard(degraded_lock_);
      degraded_reason_.clear();
      degraded_.store(false, std::memory_order_release);
    }
    ERIS_DLOG(Info) << "engine left degraded mode after a clean snapshot";
  }
  return st;
}

Status Engine::WriteSnapshotFiles() {
  const uint64_t epoch = snapshot_epoch_ + 1;
  durability::SnapshotMeta meta;
  meta.epoch = epoch;
  meta.num_aeus = num_aeus_;
  meta.objects.reserve(objects_.size());
  for (const auto& obj : objects_) {
    meta.objects.push_back(durability::ObjectMeta{
        static_cast<uint32_t>(obj->container),
        static_cast<uint32_t>(obj->partitioning)});
  }
  meta.wal_watermark.resize(num_aeus_);
  meta.wal_next_lsn.resize(num_aeus_);
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    // Quiesced + paused: safe to commit residue from this thread.
    aeus_[a]->FlushWal();
    durability::WalWriter* wal = durability_->wal(a);
    if (wal->sealed()) {
      // The residue commit itself just failed: the in-memory state now
      // holds effects that never reached the log, so this snapshot would
      // publish unlogged writes. Abort before any file is created.
      return wal->seal_status();
    }
    meta.wal_watermark[a] = wal->next_lsn() - 1;
    meta.wal_next_lsn[a] = wal->next_lsn();
  }
  // Pre-flatten so the metadata carries exact byte counts; the write path
  // then just hands the streams over.
  std::vector<std::vector<uint8_t>> streams;
  streams.reserve(objects_.size() * num_aeus_);
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    for (storage::ObjectId o = 0; o < objects_.size(); ++o) {
      storage::Partition* part = aeus_[a]->partition(o);
      streams.push_back(part->Flatten());
      meta.partitions.push_back(durability::PartitionMeta{
          o, a, part->range(), streams.back().size()});
    }
  }
  Status st = durability_->WriteSnapshot(
      meta, [&](size_t i) { return std::move(streams[i]); });
  if (!st.ok()) return st;
  // Publication point: after this rename+fsync the new snapshot is the
  // recovery base; before it, the old one. Never a mix.
  st = durability_->WriteCurrent(epoch);
  if (!st.ok()) return st;
  snapshot_epoch_ = epoch;
  // The log contents are redundant now. A crash before a Rotate() is
  // harmless: replay skips records at or below the watermark.
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    st = durability_->wal(a)->Rotate();
    if (!st.ok()) return st;
  }
  durability_->RemoveOldSnapshots(epoch);
  return Status::Ok();
}

std::string Engine::StatsReport() {
  std::ostringstream os;
  os << "engine: " << options_.topology.name() << ", " << num_aeus_
     << " AEUs, "
     << (options_.mode == ExecutionMode::kThreads ? "threads" : "simulated")
     << " mode\n";
  for (numa::NodeId node = 0; node < options_.topology.num_nodes(); ++node) {
    numa::MemoryStats m = memory_->manager(node).stats();
    os << "  node " << node << ": " << m.bytes_in_use() / 1024
       << " KiB in use, " << m.bytes_reserved / 1024 << " KiB reserved, "
       << m.allocations << " allocations\n";
  }
  for (storage::ObjectId o = 0; o < objects_.size(); ++o) {
    const storage::DataObjectDesc& d = *objects_[o];
    uint64_t tuples = 0;
    uint64_t bytes = 0;
    for (routing::AeuId a = 0; a < num_aeus_; ++a) {
      tuples += aeus_[a]->partition(o)->tuple_count();
      bytes += aeus_[a]->partition(o)->memory_bytes();
    }
    os << "  object " << o << " '" << d.name << "': " << tuples
       << " tuples, " << bytes / 1024 << " KiB";
    if (d.partitioning == storage::PartitioningKind::kRange) {
      os << ", " << router_->range_table(o)->size() << " ranges";
    } else if (d.partitioning == storage::PartitioningKind::kPhysical) {
      os << ", " << router_->bitmap_table(o)->count() << " holders";
    } else {
      os << ", hash partitioned";
    }
    os << "\n";
  }
  uint64_t commands = 0;
  uint64_t forwarded = 0;
  uint64_t deferred = 0;
  uint64_t coalesced = 0;
  uint64_t links = 0;
  uint64_t copies = 0;
  uint64_t expired = 0;
  uint64_t quarantined = 0;
  for (routing::AeuId a = 0; a < num_aeus_; ++a) {
    const AeuLoopStats& st = aeus_[a]->loop_stats();
    commands += st.commands_processed;
    forwarded += st.commands_forwarded;
    deferred += st.commands_deferred;
    coalesced += st.scans_coalesced;
    links += st.link_transfers;
    copies += st.copy_transfers;
    expired += st.commands_expired;
    quarantined += st.commands_quarantined;
  }
  os << "  AEUs: " << commands << " commands processed, " << forwarded
     << " forwarded, " << deferred << " deferred, " << coalesced
     << " scans coalesced, " << links << " link / " << copies
     << " copy transfers\n";
  os << "  overload: " << admission_->inflight() << "/"
     << admission_->budget() << " units in flight, "
     << admission_->rejections() << " admission rejections, " << expired
     << " commands expired, " << quarantined << " quarantined, "
     << watchdog_->stalled_count() << " AEUs stalled ("
     << watchdog_->stall_events() << " stall events)\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Engine::Session::Session(Engine* engine, numa::NodeId node)
    : engine_(engine),
      endpoint_(&engine->router(), routing::kInvalidAeu, node,
                &engine->memory().manager(node)) {}

std::unique_ptr<Engine::Session> Engine::CreateSession() {
  numa::NodeId node = static_cast<numa::NodeId>(
      session_counter_.fetch_add(1, std::memory_order_relaxed) %
      options_.topology.num_nodes());
  return std::make_unique<Session>(this, node);
}

std::unique_ptr<Engine::Session> Engine::CreateSessionOnNode(
    numa::NodeId node) {
  return std::make_unique<Session>(this, node);
}

void Engine::Session::Wait(uint64_t expected) {
  endpoint_.FlushAll();
  engine_->DriveUntil([&] {
    if (endpoint_.HasPending()) endpoint_.FlushAll();
    return sink_.completed() >= expected;
  });
}

uint64_t Engine::Session::Lookup(storage::ObjectId object,
                                 std::span<const storage::Key> keys) {
  sink_.Reset();
  size_t expected = endpoint_.SendLookupBatch(object, keys, &sink_);
  Wait(expected);
  return sink_.hits();
}

namespace {

/// Sink collecting per-key lookup results (for LookupValues).
class CollectSink : public routing::ResultSink {
 public:
  void OnLookupBatch(std::span<const storage::Key> keys,
                     std::span<const storage::Value> values,
                     std::span<const bool> found) override {
    std::lock_guard<SpinLock> guard(lock_);
    for (size_t i = 0; i < keys.size(); ++i) {
      results_[keys[i]] =
          found[i] ? std::optional<storage::Value>(values[i]) : std::nullopt;
    }
  }
  void OnCommandComplete(uint64_t units) override {
    completed_.fetch_add(units, std::memory_order_release);
  }
  uint64_t completed() const {
    return completed_.load(std::memory_order_acquire);
  }
  std::optional<storage::Value> Get(storage::Key key) const {
    auto it = results_.find(key);
    return it == results_.end() ? std::nullopt : it->second;
  }

 private:
  SpinLock lock_;
  std::unordered_map<storage::Key, std::optional<storage::Value>> results_;
  std::atomic<uint64_t> completed_{0};
};

}  // namespace

std::vector<std::optional<storage::Value>> Engine::Session::LookupValues(
    storage::ObjectId object, std::span<const storage::Key> keys) {
  CollectSink sink;
  size_t expected = endpoint_.SendLookupBatch(object, keys, &sink);
  endpoint_.FlushAll();
  engine_->DriveUntil([&] {
    if (endpoint_.HasPending()) endpoint_.FlushAll();
    return sink.completed() >= expected;
  });
  std::vector<std::optional<storage::Value>> out;
  out.reserve(keys.size());
  for (storage::Key k : keys) out.push_back(sink.Get(k));
  return out;
}

uint64_t Engine::Session::Insert(storage::ObjectId object,
                                 std::span<const routing::KeyValue> kvs) {
  sink_.Reset();
  size_t expected = endpoint_.SendWriteBatch(
      routing::CommandType::kInsertBatch, object, kvs, &sink_);
  Wait(expected);
  return sink_.hits();
}

uint64_t Engine::Session::Upsert(storage::ObjectId object,
                                 std::span<const routing::KeyValue> kvs) {
  sink_.Reset();
  size_t expected = endpoint_.SendWriteBatch(
      routing::CommandType::kUpsertBatch, object, kvs, &sink_);
  Wait(expected);
  return sink_.hits();
}

uint64_t Engine::Session::Erase(storage::ObjectId object,
                                std::span<const storage::Key> keys) {
  sink_.Reset();
  size_t expected = endpoint_.SendEraseBatch(object, keys, &sink_);
  Wait(expected);
  return sink_.hits();
}

void Engine::Session::Append(storage::ObjectId object,
                             std::span<const storage::Value> values) {
  sink_.Reset();
  size_t expected = endpoint_.SendAppendBatch(object, values, &sink_);
  Wait(expected);
}

Engine::Session::ColumnStats Engine::Session::ScanStats(
    storage::ObjectId object, storage::Value lo, storage::Value hi) {
  sink_.Reset();
  routing::ScanParams params;
  params.lo = lo;
  params.hi = hi;
  params.snapshot_ts = engine_->oracle().ReadTs();
  SnapshotTracker::Pin pin(&engine_->snapshots(), params.snapshot_ts);
  size_t expected = endpoint_.SendScanStats(object, params, &sink_);
  Wait(expected);
  ColumnStats stats;
  stats.rows = sink_.hits();
  stats.sum = sink_.sum();
  stats.min = sink_.min();
  stats.max = sink_.max();
  stats.avg = stats.rows > 0
                  ? static_cast<double>(stats.sum) /
                        static_cast<double>(stats.rows)
                  : 0.0;
  return stats;
}

ScanResult Engine::Session::ScanColumn(storage::ObjectId object,
                                       storage::Value lo, storage::Value hi) {
  sink_.Reset();
  routing::ScanParams params;
  params.lo = lo;
  params.hi = hi;
  params.snapshot_ts = engine_->oracle().ReadTs();
  // Pin the snapshot so idle-time MVCC maintenance cannot reclaim the
  // versions this scan reads.
  SnapshotTracker::Pin pin(&engine_->snapshots(), params.snapshot_ts);
  size_t expected = endpoint_.SendScanColumn(object, params, &sink_);
  Wait(expected);
  return ScanResult{sink_.hits(), sink_.sum()};
}

ScanResult Engine::Session::ScanIndexRange(storage::ObjectId object,
                                           storage::Key key_lo,
                                           storage::Key key_hi) {
  sink_.Reset();
  routing::ScanParams params;  // no value filter
  size_t expected =
      endpoint_.SendScanIndexRange(object, key_lo, key_hi, params, &sink_);
  Wait(expected);
  return ScanResult{sink_.hits(), sink_.sum()};
}

void Engine::Session::Fence() {
  sink_.Reset();
  uint64_t expected = 0;
  for (routing::AeuId a = 0; a < engine_->num_aeus(); ++a) {
    expected += endpoint_.SendControl(a, routing::CommandType::kFence, 0, {},
                                      &sink_);
  }
  Wait(expected);
}

// ---------------------------------------------------------------------------
// Overload-aware submits
// ---------------------------------------------------------------------------

bool Engine::Session::WaitForUnits(routing::AggregateSink* sink,
                                   uint64_t expected, uint64_t deadline_abs) {
  // Grace past the deadline: an expired command is only counted when the
  // target AEU dequeues it, so the wait extends slightly beyond the
  // deadline to observe the drop before bailing.
  constexpr uint64_t kGraceNs = 2'000'000;
  endpoint_.FlushAll();
  uint64_t idle = 0;
  while (sink->completed() < expected) {
    if (endpoint_.HasPending()) endpoint_.FlushAll();
    bool progress = false;
    if (engine_->options().mode == ExecutionMode::kSimulated ||
        !engine_->started()) {
      progress = engine_->PumpAll();
    } else {
      std::this_thread::yield();
    }
    if (deadline_abs != 0) {
      if (MonotonicNanos() > deadline_abs + kGraceNs) {
        return sink->completed() >= expected;
      }
    } else {
      // No deadline: keep the quiesced-engine abort of DriveUntil so a
      // submit that can never complete fails loudly instead of hanging.
      if (engine_->options().mode == ExecutionMode::kSimulated ||
          !engine_->started()) {
        idle = progress ? 0 : idle + 1;
        ERIS_CHECK_LT(idle, 1u << 22)
            << "engine quiesced without completing the submit";
      }
    }
  }
  return true;
}

Status Engine::Session::SubmitCommon(
    uint64_t admission_units,
    const std::function<size_t(routing::AggregateSink*)>& send,
    SubmitOutcome* out,
    const std::function<void(const routing::AggregateSink&)>& observe) {
  AdmissionController& adm = engine_->admission();
  if (!adm.TryAcquire(admission_units)) {
    if (out != nullptr) *out = SubmitOutcome{};
    return Status::ResourceExhausted("in-flight unit budget exhausted")
        .WithDetail(StatusDetail::kAdmissionRejected,
                    "admission controller rejected the submit");
  }
  uint64_t timeout_ns =
      op_timeout_ns_ != 0 ? op_timeout_ns_
                          : engine_->options().overload.default_deadline_ns;
  uint64_t deadline_abs = timeout_ns != 0 ? MonotonicNanos() + timeout_ns : 0;
  // Heap sink: if the wait bails on its deadline with units still in
  // flight, the sink is retired to the engine instead of destroyed under
  // late completions.
  auto sink = std::make_unique<routing::AggregateSink>();
  endpoint_.set_deadline_ns(deadline_abs);
  uint64_t expected = send(sink.get());
  endpoint_.set_deadline_ns(0);
  bool complete = WaitForUnits(sink.get(), expected, deadline_abs);

  uint64_t shed = sink->dropped(routing::DropReason::kRetryExhausted);
  uint64_t stalled = sink->dropped(routing::DropReason::kTargetStalled);
  uint64_t expired = sink->dropped(routing::DropReason::kExpired);
  uint64_t quarantined = sink->dropped(routing::DropReason::kQuarantined);
  uint64_t wal_sealed = sink->dropped(routing::DropReason::kWalSealed);
  uint64_t alloc_failed = sink->dropped(routing::DropReason::kAllocFailed);
  if (out != nullptr) {
    out->units = expected;
    out->hits = sink->hits();
    out->shed = shed;
    out->stalled = stalled;
    out->expired = expired;
    out->quarantined = quarantined;
    out->wal_sealed = wal_sealed;
    out->alloc_failed = alloc_failed;
  }
  // Release the full grant even when units are still in flight after a
  // bail-out: admission bounds concurrent submits, not mailbox residency,
  // and a stuck grant would leak budget forever.
  adm.Release(admission_units);
  if (!complete) {
    engine_->RetireSink(std::move(sink));
    return Status::DeadlineExceeded("submit timed out")
        .WithDetail(StatusDetail::kDeadlineExpired,
                    "completion units still in flight at the deadline");
  }
  if (complete && observe) observe(*sink);
  if (quarantined > 0) {
    return Status::Internal("poison command quarantined")
        .WithDetail(StatusDetail::kCommandQuarantined,
                    "command dead-lettered after repeated handler crashes");
  }
  if (stalled > 0) {
    return Status::Unavailable("target AEU stalled")
        .WithDetail(StatusDetail::kAeuStalled,
                    "commands shed fail-fast for a quarantined AEU");
  }
  if (wal_sealed > 0) {
    return Status::Unavailable("write lost: WAL sealed")
        .WithDetail(StatusDetail::kWalSealed,
                    "target AEU's log sealed fail-stop on an I/O error");
  }
  if (alloc_failed > 0) {
    return Status::ResourceExhausted("arena allocation failed")
        .WithDetail(StatusDetail::kAllocFailed,
                    "hot-path arena/pool could not grow; command shed");
  }
  if (shed > 0) {
    return Status::ResourceExhausted("delivery retries exhausted")
        .WithDetail(StatusDetail::kBufferFull,
                    "target incoming buffer stayed full past the retry cap");
  }
  if (expired > 0) {
    return Status::DeadlineExceeded("command deadline expired")
        .WithDetail(StatusDetail::kDeadlineExpired,
                    "dropped at dequeue after the deadline passed");
  }
  return Status::Ok();
}

Status Engine::Session::CheckWritable(SubmitOutcome* out) {
  if (!engine_->degraded()) return Status::Ok();
  // Degraded read-only mode (DESIGN.md §15): shed writes at the session
  // boundary, before they acquire admission units or touch any mailbox.
  // Reads (SubmitLookup/SubmitScanStats and the query layer) keep serving.
  engine_->admission().RecordRejection();
  if (out != nullptr) *out = SubmitOutcome{};
  std::string reason = engine_->degraded_reason();
  return Status::Unavailable("engine degraded read-only: " + reason)
      .WithDetail(StatusDetail::kReadOnly, reason);
}

Status Engine::Session::SubmitInsert(storage::ObjectId object,
                                     std::span<const routing::KeyValue> kvs,
                                     SubmitOutcome* out) {
  ERIS_RETURN_NOT_OK(CheckWritable(out));
  return SubmitCommon(kvs.size(), [&](routing::AggregateSink* sink) {
    return endpoint_.SendWriteBatch(routing::CommandType::kInsertBatch,
                                    object, kvs, sink);
  }, out);
}

Status Engine::Session::SubmitUpsert(storage::ObjectId object,
                                     std::span<const routing::KeyValue> kvs,
                                     SubmitOutcome* out) {
  ERIS_RETURN_NOT_OK(CheckWritable(out));
  return SubmitCommon(kvs.size(), [&](routing::AggregateSink* sink) {
    return endpoint_.SendWriteBatch(routing::CommandType::kUpsertBatch,
                                    object, kvs, sink);
  }, out);
}

Status Engine::Session::SubmitErase(storage::ObjectId object,
                                    std::span<const storage::Key> keys,
                                    SubmitOutcome* out) {
  ERIS_RETURN_NOT_OK(CheckWritable(out));
  return SubmitCommon(keys.size(), [&](routing::AggregateSink* sink) {
    return endpoint_.SendEraseBatch(object, keys, sink);
  }, out);
}

Status Engine::Session::SubmitLookup(storage::ObjectId object,
                                     std::span<const storage::Key> keys,
                                     SubmitOutcome* out) {
  return SubmitCommon(keys.size(), [&](routing::AggregateSink* sink) {
    return endpoint_.SendLookupBatch(object, keys, sink);
  }, out);
}

Status Engine::Session::SubmitAppend(storage::ObjectId object,
                                     std::span<const storage::Value> values,
                                     SubmitOutcome* out) {
  ERIS_RETURN_NOT_OK(CheckWritable(out));
  return SubmitCommon(values.size(), [&](routing::AggregateSink* sink) {
    return endpoint_.SendAppendBatch(object, values, sink);
  }, out);
}

Status Engine::Session::SubmitScanStats(storage::ObjectId object,
                                        storage::Value lo, storage::Value hi,
                                        ColumnStats* stats,
                                        SubmitOutcome* out) {
  routing::ScanParams params;
  params.lo = lo;
  params.hi = hi;
  params.snapshot_ts = engine_->oracle().ReadTs();
  SnapshotTracker::Pin pin(&engine_->snapshots(), params.snapshot_ts);
  return SubmitCommon(
      1,
      [&](routing::AggregateSink* sink) {
        return endpoint_.SendScanStats(object, params, sink);
      },
      out,
      [&](const routing::AggregateSink& sink) {
        if (stats == nullptr) return;
        stats->rows = sink.hits();
        stats->sum = sink.sum();
        stats->min = sink.min();
        stats->max = sink.max();
        stats->avg = stats->rows > 0
                         ? static_cast<double>(stats->sum) /
                               static_cast<double>(stats->rows)
                         : 0.0;
      });
}

}  // namespace eris::core
