#include "core/aeu.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/fault_injection.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "durability/wal.h"
#include "numa/pinning.h"
#include "sim/index_model.h"

namespace eris::core {

namespace {

bool IsControlCommand(routing::CommandType t) {
  switch (t) {
    case routing::CommandType::kBalanceRange:
    case routing::CommandType::kBalancePhysical:
    case routing::CommandType::kTransferRequest:
    case routing::CommandType::kInstallPartition:
      return true;
    default:
      return false;
  }
}

/// The AEU whose RunLoopIteration is executing on this thread. Set before
/// the kAeuLoop injection point so hooks (e.g. stall injectors) can gate on
/// Aeu::Current()->id() — and so a hook that blocks there keeps the
/// heartbeat static, which is what the watchdog detects.
thread_local Aeu* t_current_aeu = nullptr;

sim::TreeShape ShapeOf(const storage::Partition& part) {
  sim::TreeShape shape;
  if (const storage::PrefixTree* tree = part.index()) {
    shape.levels = tree->levels();
    shape.fanout = 1u << tree->config().prefix_bits;
    shape.keys = tree->size();
    shape.bytes = tree->memory_bytes();
  } else if (part.hash()) {
    shape.levels = 1;
    shape.fanout = 2;
    shape.keys = part.hash()->size();
    shape.bytes = part.hash()->memory_bytes();
  }
  return shape;
}

}  // namespace

Aeu::Aeu(routing::AeuId id, Engine* engine)
    : engine_(engine),
      id_(id),
      node_(engine->NodeOfAeu(id)),
      endpoint_(&engine->router(), id, engine->NodeOfAeu(id),
                &engine->memory().manager(engine->NodeOfAeu(id))),
      sel_(&engine->memory().manager(engine->NodeOfAeu(id))),
      mat_idx_(&engine->memory().manager(engine->NodeOfAeu(id))),
      join_run_(&engine->memory().manager(engine->NodeOfAeu(id))),
      join_out_(&engine->memory().manager(engine->NodeOfAeu(id))),
      join_keys_(&engine->memory().manager(engine->NodeOfAeu(id))) {
  // Objects may be registered while the loop runs (query-layer
  // intermediates): the slot array is sized up front so AddPartition only
  // ever writes one slot and publishes it through num_partitions_. A
  // command can only reference an object after its registration completed,
  // so slot writes are also ordered before command-side reads via the
  // mailbox's release/acquire pair.
  partitions_.resize(routing::Router::kMaxObjects);
  // Dequeue/dispatch scratch carves from the AEU's node-local manager.
  numa::NodeMemoryManager* memory = &engine->memory().manager(node_);
  control_.set_memory(memory);
  scratch_keys_.set_memory(memory);
  scratch_values_.set_memory(memory);
  scratch_kvs_.set_memory(memory);
  scratch_payload_.set_memory(memory);
  transfer_payload_.set_memory(memory);
  wal_scratch_.set_memory(memory);
  lookup_segments_.set_memory(memory);
  pending_keys_.set_memory(memory);
  foreign_keys_.set_memory(memory);
  mine_keys_.set_memory(memory);
  found_.set_memory(memory);
  pending_kvs_.set_memory(memory);
  mine_kvs_.set_memory(memory);
  scan_jobs_.set_memory(memory);
  pipeline_jobs_.set_memory(memory);
  pipeline_fused_.set_memory(memory);
}

Aeu::~Aeu() = default;

void Aeu::set_wal(durability::WalWriter* wal) {
  wal_ = wal;
  // The group-commit buffer lives behind the AEU's node-local manager, so
  // steady-state logging reuses arena capacity (DESIGN.md §16).
  if (wal_ != nullptr) {
    wal_->set_memory(&engine_->memory().manager(node_));
  }
}

void Aeu::AddPartition(const storage::DataObjectDesc& desc,
                       storage::KeyRange initial_range) {
  uint32_t count = num_partitions_.load(std::memory_order_relaxed);
  ERIS_CHECK_EQ(desc.id, count);
  ERIS_CHECK_LT(count, routing::Router::kMaxObjects);
  uint64_t salt = Mix64((static_cast<uint64_t>(desc.id) << 32) | id_);
  partitions_[count] = std::make_unique<storage::Partition>(
      desc, &engine_->memory().manager(node_), initial_range, salt);
  num_partitions_.store(count + 1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Loop
// ---------------------------------------------------------------------------

Aeu* Aeu::Current() { return t_current_aeu; }

bool Aeu::RunLoopIteration() {
  t_current_aeu = this;
  ERIS_INJECT_POINT(kAeuLoop);
  // The heartbeat advances only past the injection point: a hook that
  // blocks the loop leaves the epoch static for the watchdog to see.
  heartbeat_.fetch_add(1, std::memory_order_relaxed);
  ++stats_.iterations;
  uint64_t processed_before = stats_.commands_processed;

  if (!deferred_.empty()) RetryDeferred();
  bool drained = ProcessIncoming();
  // Loop wrap-around: push out whatever the processing stage produced.
  endpoint_.FlushAll();
  // Group commit: every effect record logged this iteration reaches stable
  // storage before its write acknowledgement is delivered (DESIGN.md §14).
  if (wal_ != nullptr) CommitWalAndAck();
  ChargeRoutingCosts();

  bool worked = drained || stats_.commands_processed != processed_before;
  if (worked) {
    idle_iterations_ = 0;
  } else if (++idle_iterations_ == 64) {
    // Idle: use the slack for storage maintenance (paper §6).
    idle_iterations_ = 0;
    RunMaintenance();
  }
  quiescent_.store(deferred_.empty() && !endpoint_.HasPending(),
                   std::memory_order_release);
  return worked;
}

void Aeu::RunMaintenance() {
  uint64_t watermark =
      engine_->snapshots().MinActive(engine_->oracle().ReadTs());
  if (watermark == 0) return;
  ++stats_.maintenance_runs;
  uint32_t n = num_partitions_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < n; ++i) {
    storage::Partition* part = partitions_[i].get();
    storage::MvccColumn* column = part->mvcc_column();
    if (column == nullptr || column->undo_chains() == 0) continue;
    size_t before = column->undo_chains();
    // A version overwritten at ts <= watermark is invisible to every
    // snapshot >= watermark (the oldest one still active).
    column->GarbageCollect(watermark);
    stats_.versions_reclaimed += before - column->undo_chains();
  }
}

bool Aeu::ProcessIncoming() {
  size_t filled = engine_->router().mailbox(id_).Drain(
      [&](std::span<const uint8_t> region) {
        if (region.empty()) return;
        GroupRecords(region);
        ProcessGroups();
      });
  return filled > 0;
}

Aeu::Group* Aeu::AppendGroup(storage::ObjectId object,
                             routing::CommandType type) {
  if (groups_used_ == groups_.size()) {
    groups_.emplace_back();
    groups_.back().commands.set_memory(&engine_->memory().manager(node_));
  }
  Group& g = groups_[groups_used_++];
  g.object = object;
  g.type = type;
  g.commands.clear();
  return &g;
}

void Aeu::GroupRecords(std::span<const uint8_t> region) {
  groups_used_ = 0;
  control_.clear();
  size_t pos = 0;
  uint64_t now = 0;  // lazily sampled: at most one clock read per drain
  while (pos + sizeof(routing::CommandHeader) <= region.size()) {
    routing::CommandView view = routing::DecodeCommand(region.data() + pos);
    pos += view.record_bytes();
    ERIS_DCHECK(pos <= region.size()) << "corrupt record stream";
    if (IsControlCommand(view.header.type)) {
      control_.push_back(view);
      continue;
    }
    if (view.header.deadline_ns != 0) {
      if (now == 0) now = MonotonicNanos();
      if (now > view.header.deadline_ns) {
        ExpireCommand(view);
        continue;
      }
    }
    // Injected dequeue-scratch allocation failure: shed the command up
    // front with a typed reason (the waiter's session surfaces it as
    // ResourceExhausted) instead of letting the arena growth abort.
    if (ERIS_INJECT_SHOULD_FAIL(kAeuScratchAlloc)) {
      uint64_t units = routing::CommandUnits(view);
      if (view.header.sink != nullptr) {
        view.header.sink->OnCommandDropped(units,
                                           routing::DropReason::kAllocFailed);
      }
      continue;
    }
    // Group by (object, type): linear scan — the number of distinct groups
    // per drain is tiny.
    Group* group = nullptr;
    for (size_t i = 0; i < groups_used_; ++i) {
      Group& g = groups_[i];
      if (g.object == view.header.object && g.type == view.header.type) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      group = AppendGroup(view.header.object, view.header.type);
    }
    group->commands.push_back(view);
  }
}

void Aeu::ProcessGroups() {
  for (size_t gi = 0; gi < groups_used_; ++gi) {
    Group& g = groups_[gi];
    if (fi::Armed()) FilterPoisoned(&g);
    if (g.commands.empty()) continue;
    Stopwatch watch;
    group_ops_ = 0;
    group_modeled_ns_ = 0;
    switch (g.type) {
      case routing::CommandType::kLookupBatch:
        ProcessLookupGroup(g);
        break;
      case routing::CommandType::kInsertBatch:
      case routing::CommandType::kUpsertBatch:
        ProcessWriteGroup(g);
        break;
      case routing::CommandType::kEraseBatch:
        ProcessEraseGroup(g);
        break;
      case routing::CommandType::kAppendBatch:
        ProcessAppendGroup(g);
        break;
      case routing::CommandType::kScanColumn:
        ProcessScanColumnGroup(g);
        break;
      case routing::CommandType::kScanIndexRange:
        ProcessScanIndexGroup(g);
        break;
      case routing::CommandType::kScanStats:
        ProcessScanStatsGroup(g);
        break;
      case routing::CommandType::kScanMaterialize:
        ProcessScanMaterializeGroup(g);
        break;
      case routing::CommandType::kJoinProbe:
        ProcessJoinProbeGroup(g);
        break;
      case routing::CommandType::kPipeline:
        ProcessPipelineGroup(g);
        break;
      case routing::CommandType::kJoinScatter:
        ProcessJoinScatterGroup(g);
        break;
      case routing::CommandType::kJoinStage:
        ProcessJoinStageGroup(g);
        break;
      case routing::CommandType::kJoinMerge:
        ProcessJoinMergeGroup(g);
        break;
      case routing::CommandType::kFence:
        for (const routing::CommandView& cmd : g.commands) ProcessFence(cmd);
        break;
      default:
        ERIS_CHECK(false) << "unexpected data command "
                          << routing::CommandTypeName(g.type);
    }
    stats_.commands_processed += g.commands.size();
    double exec_ns = engine_->sim_enabled()
                         ? group_modeled_ns_
                         : static_cast<double>(watch.ElapsedNanos());
    RecordGroupMetrics(g.object, group_ops_, exec_ns);
  }
  // Balancing and transfer commands run after the data commands (the last
  // stage of the AEU loop in Figure 3).
  for (const routing::CommandView& cmd : control_) {
    switch (cmd.header.type) {
      case routing::CommandType::kBalanceRange:
        HandleBalanceRange(cmd);
        break;
      case routing::CommandType::kBalancePhysical:
        HandleBalancePhysical(cmd);
        break;
      case routing::CommandType::kTransferRequest:
        HandleTransferRequest(cmd);
        break;
      case routing::CommandType::kInstallPartition:
        HandleInstall(cmd);
        break;
      default:
        ERIS_CHECK(false);
    }
    ++stats_.commands_processed;
  }
}

void Aeu::RetryDeferred() {
  std::vector<std::vector<uint8_t>> pending;
  pending.swap(deferred_);
  uint64_t now = 0;
  for (const std::vector<uint8_t>& record : pending) {
    routing::CommandView view = routing::DecodeCommand(record.data());
    if (!IsControlCommand(view.header.type) && view.header.deadline_ns != 0) {
      if (now == 0) now = MonotonicNanos();
      if (now > view.header.deadline_ns) {
        ExpireCommand(view);
        continue;
      }
    }
    groups_used_ = 0;
    control_.clear();
    if (IsControlCommand(view.header.type)) {
      control_.push_back(view);
    } else {
      AppendGroup(view.header.object, view.header.type)
          ->commands.push_back(view);
    }
    ProcessGroups();
  }
}

void Aeu::ExpireCommand(const routing::CommandView& cmd) {
  uint64_t units = routing::CommandUnits(cmd);
  ++stats_.commands_expired;
  stats_.units_expired += units;
  if (cmd.header.sink != nullptr) {
    cmd.header.sink->OnCommandDropped(units, routing::DropReason::kExpired);
  }
}

void Aeu::FilterPoisoned(Group* g) {
  size_t kept = 0;
  for (size_t i = 0; i < g->commands.size(); ++i) {
    const routing::CommandView& cmd = g->commands[i];
    current_command_ = &cmd;
    bool poisoned = false;
    try {
      ERIS_INJECT_POINT(kAeuProcess);
    } catch (...) {
      poisoned = true;
    }
    current_command_ = nullptr;
    if (poisoned) {
      HandlePoisoned(cmd);
    } else {
      g->commands[kept++] = cmd;
    }
  }
  g->commands.resize(kept);
}

void Aeu::HandlePoisoned(const routing::CommandView& cmd) {
  // Bounded dead-letter log: quarantine keeps the header + payload copy of
  // the first kMaxDeadLetters poison commands for post-mortem inspection.
  constexpr size_t kMaxDeadLetters = 1024;
  uint64_t key = PoisonKey(cmd);
  uint32_t attempts = ++poison_attempts_[key];
  if (attempts <= engine_->options().overload.max_command_retries) {
    DeferCommand(cmd.header, {cmd.payload, cmd.header.payload_bytes});
    return;
  }
  poison_attempts_.erase(key);
  ++stats_.commands_quarantined;
  if (dead_letters_.size() < kMaxDeadLetters) {
    dead_letters_.push_back(DeadLetter{
        cmd.header, std::vector<uint8_t>(
                        cmd.payload, cmd.payload + cmd.header.payload_bytes)});
  }
  uint64_t units = routing::CommandUnits(cmd);
  if (cmd.header.sink != nullptr) {
    cmd.header.sink->OnCommandDropped(units,
                                      routing::DropReason::kQuarantined);
  }
}

uint64_t Aeu::PoisonKey(const routing::CommandView& cmd) {
  uint64_t h = Mix64((static_cast<uint64_t>(cmd.header.object) << 8) |
                     static_cast<uint64_t>(cmd.header.type));
  h = Mix64(h ^ cmd.header.payload_bytes);
  h = Mix64(h ^ reinterpret_cast<uintptr_t>(cmd.header.sink));
  size_t i = 0;
  for (; i + 8 <= cmd.header.payload_bytes; i += 8) {
    uint64_t w;
    std::memcpy(&w, cmd.payload + i, 8);
    h = Mix64(h ^ w);
  }
  if (i < cmd.header.payload_bytes) {
    uint64_t tail = 0;
    std::memcpy(&tail, cmd.payload + i, cmd.header.payload_bytes - i);
    h = Mix64(h ^ tail);
  }
  return h;
}

// ---------------------------------------------------------------------------
// Keyed command helpers
// ---------------------------------------------------------------------------

bool Aeu::InPendingRange(storage::ObjectId object, storage::Key key) const {
  for (const PendingFetch& p : pending_fetches_) {
    if (p.object == object && p.range.Contains(key)) return true;
  }
  return false;
}

bool Aeu::RangeOverlapsPending(storage::ObjectId object, storage::Key lo,
                               storage::Key hi) const {
  for (const PendingFetch& p : pending_fetches_) {
    if (p.object != object) continue;
    storage::Key p_hi = p.range.hi;
    if (lo < p_hi && p.range.lo < hi) return true;
  }
  return false;
}

void Aeu::DeferCommand(const routing::CommandHeader& header,
                       std::span<const uint8_t> payload) {
  std::vector<uint8_t> record;
  routing::EncodeCommand(header, payload, &record);
  deferred_.push_back(std::move(record));
  ++stats_.commands_deferred;
}

void Aeu::ProcessLookupGroup(const Group& g) {
  storage::Partition* part = partition(g.object);
  const LookupPathOptions& lp = engine_->options().lookup;
  lookup_segments_.clear();
  scratch_keys_.clear();  // "mine" keys of every command in the group
  for (const routing::CommandView& cmd : g.commands) {
    std::span<const storage::Key> keys = cmd.PayloadAs<storage::Key>();
    pending_keys_.clear();
    foreign_keys_.clear();
    const size_t offset = scratch_keys_.size();
    // Classify keys: mine / in-flight (deferred) / no longer mine (forward).
    for (storage::Key k : keys) {
      // Pending check first: after a balancing command the declared range
      // already covers data that is still in flight toward this AEU.
      if (InPendingRange(g.object, k)) {
        pending_keys_.push_back(k);
      } else if (part->range().Contains(k)) {
        scratch_keys_.push_back(k);
      } else {
        foreign_keys_.push_back(k);
      }
    }
    if (scratch_keys_.size() > offset) {
      lookup_segments_.push_back(
          {cmd.header.sink, static_cast<uint32_t>(offset),
           static_cast<uint32_t>(scratch_keys_.size() - offset)});
    }
    if (!foreign_keys_.empty()) {
      // The partitioning moved under this command: forward to the current
      // owners (completion units travel with the forwarded keys, and the
      // forwarded record inherits the original deadline).
      endpoint_.set_deadline_ns(cmd.header.deadline_ns);
      endpoint_.SendLookupBatch(g.object, foreign_keys_, cmd.header.sink);
      endpoint_.set_deadline_ns(0);
      ++stats_.commands_forwarded;
    }
    if (!pending_keys_.empty()) {
      DeferCommand(cmd.header,
                   {reinterpret_cast<const uint8_t*>(pending_keys_.data()),
                    pending_keys_.size() * sizeof(storage::Key)});
    }
  }
  if (scratch_keys_.empty()) return;
  scratch_values_.resize(scratch_keys_.size());
  found_.resize(scratch_keys_.size());
  storage::BatchLookupStats probe_stats;
  auto probe = [&](std::span<const storage::Key> keys, storage::Value* out,
                   bool* found) {
    if (lp.pipelined_descent) {
      // Batched probe: the probes descend together with prefetching — the
      // latency-hiding batch operation of the paper's Section 3.1.
      if (const storage::PrefixTree* tree = part->index()) {
        tree->BatchLookup(keys, out, found, &probe_stats);
        return;
      }
      if (const storage::HashTable* hash = part->hash()) {
        hash->BatchLookup(keys, out, found, &probe_stats);
        return;
      }
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      std::optional<storage::Value> v = part->Lookup(keys[i]);
      found[i] = v.has_value();
      out[i] = v.value_or(0);
    }
  };
  std::span<const storage::Key> all_keys{scratch_keys_};
  if (lp.coalesce_commands) {
    // One descent over the whole group's keys: commands that arrived in the
    // same dequeue window share prefetch slots and upper-level cache lines
    // (mirrors scan-group coalescing for point reads).
    probe(all_keys, scratch_values_.data(), found_.data());
    if (lookup_segments_.size() > 1) {
      stats_.lookups_coalesced += lookup_segments_.size() - 1;
    }
  } else {
    for (const LookupSegment& s : lookup_segments_) {
      probe(all_keys.subspan(s.offset, s.len),
            scratch_values_.data() + s.offset, found_.data() + s.offset);
    }
  }
  for (const LookupSegment& s : lookup_segments_) {
    if (s.sink == nullptr) continue;
    s.sink->OnLookupBatch(
        all_keys.subspan(s.offset, s.len),
        std::span<const storage::Value>{scratch_values_}.subspan(s.offset,
                                                                 s.len),
        {found_.data() + s.offset, s.len});
    s.sink->OnCommandComplete(s.len);
  }
  group_ops_ += scratch_keys_.size();
  ChargeLookupOps(g.object, group_ops_, probe_stats.nodes_touched);
}

void Aeu::ProcessWriteGroup(const Group& g) {
  storage::Partition* part = partition(g.object);
  const bool overwrite = g.type == routing::CommandType::kUpsertBatch;
  for (const routing::CommandView& cmd : g.commands) {
    std::span<const routing::KeyValue> kvs =
        cmd.PayloadAs<routing::KeyValue>();
    routing::ResultSink* sink = cmd.header.sink;
    if (wal_ != nullptr && wal_->sealed()) {
      // Fail-stop: the log can never make this write durable. Drop the
      // whole command (nothing applied, nothing forwarded) with a typed
      // reason covering all of its units so the waiter completes.
      if (sink != nullptr) {
        sink->OnCommandDropped(kvs.size(), routing::DropReason::kWalSealed);
      }
      stats_.wal_drops += kvs.size();
      continue;
    }
    // Injected version/pool allocation failure: shed the whole command
    // before anything is logged or applied (recoverable — the waiter's
    // session surfaces a typed ResourceExhausted).
    if (ERIS_INJECT_SHOULD_FAIL(kMvccVersionAlloc)) {
      if (sink != nullptr) {
        sink->OnCommandDropped(kvs.size(), routing::DropReason::kAllocFailed);
      }
      continue;
    }
    scratch_kvs_.clear();  // foreign
    pending_kvs_.clear();
    mine_kvs_.clear();
    for (const routing::KeyValue& kv : kvs) {
      if (InPendingRange(g.object, kv.key)) {
        pending_kvs_.push_back(kv);
      } else if (part->range().Contains(kv.key)) {
        mine_kvs_.push_back(kv);
      } else {
        scratch_kvs_.push_back(kv);
      }
    }
    // Write-ahead: the locally applied subset is logged before it touches
    // the partition (foreign/pending keys are logged by their eventual
    // applier, so each AEU's log replays independently).
    if (wal_ != nullptr && !mine_kvs_.empty()) {
      Status st = WalLogEffect(
          g.type, g.object,
          {reinterpret_cast<const uint8_t*>(mine_kvs_.data()),
           mine_kvs_.size() * sizeof(routing::KeyValue)});
      if (st.IsResourceExhausted()) {
        // Group-buffer allocation failed (injected): nothing was logged,
        // the log is not sealed — shed the local subset so nothing is
        // applied-but-unlogged. Foreign/pending splits still travel.
        if (sink != nullptr) {
          sink->OnCommandDropped(mine_kvs_.size(),
                                 routing::DropReason::kAllocFailed);
        }
        mine_kvs_.clear();
      }
    }
    uint64_t applied = 0;
    for (const routing::KeyValue& kv : mine_kvs_) {
      bool was_new = overwrite ? part->Upsert(kv.key, kv.value)
                               : part->Insert(kv.key, kv.value);
      applied += was_new ? 1 : 0;
    }
    uint64_t mine = mine_kvs_.size();
    if (mine > 0 && sink != nullptr) AckWrite(sink, applied, mine);
    group_ops_ += mine;
    if (!scratch_kvs_.empty()) {
      endpoint_.set_deadline_ns(cmd.header.deadline_ns);
      endpoint_.SendWriteBatch(g.type, g.object, scratch_kvs_, sink);
      endpoint_.set_deadline_ns(0);
      ++stats_.commands_forwarded;
    }
    if (!pending_kvs_.empty()) {
      DeferCommand(cmd.header,
                   {reinterpret_cast<const uint8_t*>(pending_kvs_.data()),
                    pending_kvs_.size() * sizeof(routing::KeyValue)});
    }
  }
  ChargePointOps(g.object, group_ops_, /*is_write=*/true);
}

void Aeu::ProcessEraseGroup(const Group& g) {
  storage::Partition* part = partition(g.object);
  for (const routing::CommandView& cmd : g.commands) {
    std::span<const storage::Key> keys = cmd.PayloadAs<storage::Key>();
    routing::ResultSink* sink = cmd.header.sink;
    if (wal_ != nullptr && wal_->sealed()) {
      if (sink != nullptr) {
        sink->OnCommandDropped(keys.size(), routing::DropReason::kWalSealed);
      }
      stats_.wal_drops += keys.size();
      continue;
    }
    scratch_keys_.clear();
    pending_keys_.clear();
    mine_keys_.clear();
    for (storage::Key k : keys) {
      if (InPendingRange(g.object, k)) {
        pending_keys_.push_back(k);
      } else if (part->range().Contains(k)) {
        mine_keys_.push_back(k);
      } else {
        scratch_keys_.push_back(k);
      }
    }
    if (wal_ != nullptr && !mine_keys_.empty()) {
      Status st = WalLogEffect(
          g.type, g.object,
          {reinterpret_cast<const uint8_t*>(mine_keys_.data()),
           mine_keys_.size() * sizeof(storage::Key)});
      if (st.IsResourceExhausted()) {
        if (sink != nullptr) {
          sink->OnCommandDropped(mine_keys_.size(),
                                 routing::DropReason::kAllocFailed);
        }
        mine_keys_.clear();
      }
    }
    uint64_t applied = 0;
    for (storage::Key k : mine_keys_) applied += part->Erase(k) ? 1 : 0;
    uint64_t mine = mine_keys_.size();
    if (mine > 0 && sink != nullptr) AckWrite(sink, applied, mine);
    group_ops_ += mine;
    if (!scratch_keys_.empty()) {
      endpoint_.set_deadline_ns(cmd.header.deadline_ns);
      endpoint_.SendEraseBatch(g.object, scratch_keys_, sink);
      endpoint_.set_deadline_ns(0);
      ++stats_.commands_forwarded;
    }
    if (!pending_keys_.empty()) {
      DeferCommand(cmd.header,
                   {reinterpret_cast<const uint8_t*>(pending_keys_.data()),
                    pending_keys_.size() * sizeof(storage::Key)});
    }
  }
  ChargePointOps(g.object, group_ops_, /*is_write=*/true);
}

void Aeu::ProcessAppendGroup(const Group& g) {
  storage::Partition* part = partition(g.object);
  uint64_t total_values = 0;
  for (const routing::CommandView& cmd : g.commands) {
    std::span<const storage::Value> values =
        cmd.PayloadAs<storage::Value>();
    if (wal_ != nullptr && wal_->sealed()) {
      if (cmd.header.sink != nullptr) {
        cmd.header.sink->OnCommandDropped(1, routing::DropReason::kWalSealed);
      }
      ++stats_.wal_drops;
      continue;
    }
    // Injected MVCC version-pool allocation failure: shed before logging
    // or appending (recoverable, typed).
    if (ERIS_INJECT_SHOULD_FAIL(kMvccVersionAlloc)) {
      if (cmd.header.sink != nullptr) {
        cmd.header.sink->OnCommandDropped(1,
                                          routing::DropReason::kAllocFailed);
      }
      continue;
    }
    if (wal_ != nullptr && !values.empty()) {
      Status st = WalLogEffect(
          routing::CommandType::kAppendBatch, g.object,
          {reinterpret_cast<const uint8_t*>(values.data()),
           values.size() * sizeof(storage::Value)});
      if (st.IsResourceExhausted()) {
        if (cmd.header.sink != nullptr) {
          cmd.header.sink->OnCommandDropped(
              1, routing::DropReason::kAllocFailed);
        }
        continue;
      }
    }
    uint64_t ts = engine_->oracle().NextWriteTs();
    for (storage::Value v : values) part->ColumnAppend(v, ts);
    total_values += values.size();
    if (cmd.header.sink != nullptr) {
      AckWrite(cmd.header.sink, values.size(), 1);
    }
  }
  group_ops_ += total_values;
  engine_->monitor().RecordSize(id_, g.object, part->tuple_count(),
                                part->memory_bytes());
  if (engine_->sim_enabled()) {
    uint64_t bytes = total_values * sizeof(storage::Value);
    sim::ResourceUsage& ru = engine_->resource_usage();
    double ns = engine_->cost_model().StreamNs(node_, node_, bytes);
    ru.AddComputeNs(id_, ns);
    ru.AddMemoryTraffic(node_, node_, bytes);
    group_modeled_ns_ += ns;
  }
}

void Aeu::ProcessScanColumnGroup(const Group& g) {
  storage::Partition* part = partition(g.object);
  storage::MvccColumn* column = part->mvcc_column();
  ERIS_CHECK(column != nullptr) << "column scan on keyed object";
  scan_jobs_.clear();
  uint64_t now = 0;
  for (const routing::CommandView& cmd : g.commands) {
    // Re-checked at coalescing time: an expired member is dropped here so
    // the shared pass extent (max visible prefix) honors the earliest
    // deadline among the surviving jobs.
    if (cmd.header.deadline_ns != 0) {
      if (now == 0) now = MonotonicNanos();
      if (now > cmd.header.deadline_ns) {
        ExpireCommand(cmd);
        continue;
      }
    }
    routing::ScanParams p = cmd.PayloadAs<routing::ScanParams>()[0];
    ScanJob job;
    job.params = p;
    job.sink = cmd.header.sink;
    job.visible = p.snapshot_ts == ~uint64_t{0}
                      ? column->size()
                      : column->VisibleSize(p.snapshot_ts);
    scan_jobs_.push_back(job);
  }
  // Scan sharing: one physical pass answers every coalesced command, with
  // MVCC snapshots preserving each command's isolation.
  const bool fast = column->undo_chains() == 0;
  uint64_t max_visible = 0;
  for (const ScanJob& j : scan_jobs_) max_visible = std::max(max_visible, j.visible);
  uint64_t streamed_bytes = 0;
  if (fast) {
    // Segment-at-a-time: each 512 KiB segment is streamed once and every
    // job's vectorized kernel runs over it while it is cache-resident,
    // clamped to the job's MVCC visible prefix. Zone maps let selective
    // jobs skip whole segments without touching their payload.
    const storage::ColumnStore& col = column->column();
    constexpr uint64_t kCap = storage::ColumnStore::kSegmentCapacity;
    for (size_t s = 0; s * kCap < max_visible; ++s) {
      std::span<const storage::Value> seg = col.Segment(s);
      const storage::TupleId base = s * kCap;
      const storage::ZoneMap& z = col.zone(s);
      uint64_t seg_streamed = 0;
      for (ScanJob& j : scan_jobs_) {
        if (base >= j.visible) continue;
        uint64_t m = std::min<uint64_t>(seg.size(), j.visible - base);
        if (z.Excludes(j.params.lo, j.params.hi)) {
          ++stats_.zone_segments_skipped;
          continue;
        }
        if (z.CoveredBy(j.params.lo, j.params.hi)) {
          j.sum += simd::SumAll(seg.data(), m);
          j.rows += m;
        } else {
          uint64_t sum = 0;
          uint64_t rows = 0;
          simd::ScanSumCount(seg.data(), m, j.params.lo, j.params.hi, &sum,
                             &rows);
          j.sum += sum;
          j.rows += rows;
        }
        seg_streamed = std::max(seg_streamed, m * sizeof(storage::Value));
      }
      streamed_bytes += seg_streamed;
    }
  } else {
    // Versioned columns keep the tuple-at-a-time undo-chain path.
    for (storage::TupleId tid = 0; tid < max_visible; ++tid) {
      for (ScanJob& j : scan_jobs_) {
        if (tid >= j.visible) continue;
        storage::Value v = column->Read(tid, j.params.snapshot_ts);
        if (v >= j.params.lo && v <= j.params.hi) {
          ++j.rows;
          j.sum += v;
        }
      }
    }
    streamed_bytes = max_visible * sizeof(storage::Value);
  }
  for (ScanJob& j : scan_jobs_) {
    if (j.sink != nullptr) {
      j.sink->OnScanPartial(j.rows, j.sum);
      j.sink->OnCommandComplete(1);
    }
  }
  if (scan_jobs_.size() > 1) stats_.scans_coalesced += scan_jobs_.size() - 1;
  group_ops_ += scan_jobs_.size();
  engine_->monitor().RecordSize(id_, g.object, part->tuple_count(),
                                part->memory_bytes());
  if (engine_->sim_enabled()) {
    sim::ResourceUsage& ru = engine_->resource_usage();
    // Segments every job skipped via its zone map are never streamed, so
    // they cost neither bandwidth nor time in the model.
    uint64_t bytes = streamed_bytes;
    // The shared pass streams the column once regardless of the number of
    // coalesced commands (the benefit of scan sharing); extra predicates
    // cost a little CPU each.
    double ns = engine_->cost_model().StreamNs(node_, node_, bytes) +
                0.25 * static_cast<double>(bytes / 8) *
                    static_cast<double>(scan_jobs_.size() - 1);
    ru.AddComputeNs(id_, ns);
    ru.AddMemoryTraffic(node_, node_, bytes);
    group_modeled_ns_ += ns;
  }
}

void Aeu::ProcessScanIndexGroup(const Group& g) {
  storage::Partition* part = partition(g.object);
  uint64_t visited_total = 0;
  for (const routing::CommandView& cmd : g.commands) {
    routing::IndexScanParams p =
        cmd.PayloadAs<routing::IndexScanParams>()[0];
    if (RangeOverlapsPending(g.object, p.key_lo, p.key_hi)) {
      DeferCommand(cmd.header, {cmd.payload, cmd.header.payload_bytes});
      continue;
    }
    uint64_t rows = 0;
    uint64_t sum = 0;
    uint64_t visited = part->IndexRangeScan(
        p.key_lo, p.key_hi, [&](storage::Key, storage::Value v) {
          if (v >= p.scan.lo && v <= p.scan.hi) {
            ++rows;
            sum += v;
          }
        });
    visited_total += visited;
    if (cmd.header.sink != nullptr) {
      cmd.header.sink->OnScanPartial(rows, sum);
      cmd.header.sink->OnCommandComplete(1);
    }
  }
  group_ops_ += visited_total;
  if (engine_->sim_enabled()) {
    sim::ResourceUsage& ru = engine_->resource_usage();
    const sim::CostModelParams& p = engine_->cost_model().params();
    uint64_t bytes = visited_total * (sizeof(storage::Key) +
                                      sizeof(storage::Value));
    double ns = static_cast<double>(visited_total) * 2.0 * p.upper_hit_ns +
                engine_->cost_model().StreamNs(node_, node_, bytes);
    ru.AddComputeNs(id_, ns);
    ru.AddMemoryTraffic(node_, node_, bytes);
    group_modeled_ns_ += ns;
  }
}

void Aeu::ProcessScanStatsGroup(const Group& g) {
  storage::Partition* part = partition(g.object);
  storage::MvccColumn* column = part->mvcc_column();
  ERIS_CHECK(column != nullptr) << "stats scan on keyed object";
  uint64_t scanned = 0;
  for (const routing::CommandView& cmd : g.commands) {
    routing::ScanParams p = cmd.PayloadAs<routing::ScanParams>()[0];
    uint64_t visible = p.snapshot_ts == ~uint64_t{0}
                           ? column->size()
                           : column->VisibleSize(p.snapshot_ts);
    uint64_t rows = 0;
    uint64_t sum = 0;
    storage::Value min = ~storage::Value{0};
    storage::Value max = 0;
    column->ScanSnapshot(p.snapshot_ts == ~uint64_t{0}
                             ? engine_->oracle().ReadTs()
                             : p.snapshot_ts,
                         [&](storage::TupleId tid, storage::Value v) {
                           if (tid >= visible) return;
                           if (v < p.lo || v > p.hi) return;
                           ++rows;
                           sum += v;
                           min = std::min(min, v);
                           max = std::max(max, v);
                         });
    scanned += visible;
    if (cmd.header.sink != nullptr) {
      cmd.header.sink->OnScanStats(rows, sum, min, max);
      cmd.header.sink->OnCommandComplete(1);
    }
  }
  group_ops_ += g.commands.size();
  if (engine_->sim_enabled()) {
    uint64_t bytes = scanned * sizeof(storage::Value);
    double ns = engine_->cost_model().StreamNs(node_, node_, bytes);
    engine_->resource_usage().AddComputeNs(id_, ns);
    engine_->resource_usage().AddMemoryTraffic(node_, node_, bytes);
    group_modeled_ns_ += ns;
  }
}

void Aeu::ProcessScanMaterializeGroup(const Group& g) {
  storage::Partition* part = partition(g.object);
  storage::MvccColumn* column = part->mvcc_column();
  ERIS_CHECK(column != nullptr) << "materialize scan on keyed object";
  for (const routing::CommandView& cmd : g.commands) {
    routing::MaterializeParams p =
        cmd.PayloadAs<routing::MaterializeParams>()[0];
    uint64_t snapshot = p.scan.snapshot_ts == ~uint64_t{0}
                            ? engine_->oracle().ReadTs()
                            : p.scan.snapshot_ts;
    scratch_values_.clear();
    column->ScanSnapshot(snapshot, [&](storage::TupleId, storage::Value v) {
      if (v >= p.scan.lo && v <= p.scan.hi) scratch_values_.push_back(v);
    });
    // Route the intermediate result onward: appends land in the
    // destination owners' local memory (NUMA-local materialization). No
    // sink: the caller synchronizes on Engine::Quiesce(), and the scan's
    // own sink already reports the matched row count.
    if (!scratch_values_.empty()) {
      endpoint_.SendAppendBatch(p.dest_object, scratch_values_, nullptr);
    }
    if (cmd.header.sink != nullptr) {
      cmd.header.sink->OnScanPartial(scratch_values_.size(), 0);
      cmd.header.sink->OnCommandComplete(1);
    }
  }
  group_ops_ += g.commands.size();
  if (engine_->sim_enabled()) {
    uint64_t bytes = column->size() * sizeof(storage::Value);
    double ns = engine_->cost_model().StreamNs(node_, node_, bytes) *
                static_cast<double>(g.commands.size());
    engine_->resource_usage().AddComputeNs(id_, ns);
    engine_->resource_usage().AddMemoryTraffic(node_, node_,
                                               bytes * g.commands.size());
    group_modeled_ns_ += ns;
  }
}

void Aeu::ProcessJoinProbeGroup(const Group& g) {
  storage::Partition* part = partition(g.object);
  storage::MvccColumn* column = part->mvcc_column();
  ERIS_CHECK(column != nullptr) << "join probe on keyed object";
  for (const routing::CommandView& cmd : g.commands) {
    routing::JoinProbeParams p =
        cmd.PayloadAs<routing::JoinProbeParams>()[0];
    uint64_t snapshot = p.filter.snapshot_ts == ~uint64_t{0}
                            ? engine_->oracle().ReadTs()
                            : p.filter.snapshot_ts;
    scratch_keys_.clear();
    column->ScanSnapshot(snapshot, [&](storage::TupleId, storage::Value v) {
      if (v >= p.filter.lo && v <= p.filter.hi) scratch_keys_.push_back(v);
    });
    // Index-nested-loop join, data-oriented: the probe values become
    // routed lookup batches against the index; results flow to the
    // query's lookup sink.
    if (!scratch_keys_.empty()) {
      endpoint_.SendLookupBatch(p.index_object, scratch_keys_,
                                p.lookup_sink);
    }
    if (cmd.header.sink != nullptr) {
      // Report how many probes were issued so the caller can wait for the
      // matching number of lookup completion units.
      cmd.header.sink->OnScanPartial(scratch_keys_.size(), 0);
      cmd.header.sink->OnCommandComplete(1);
    }
  }
  group_ops_ += g.commands.size();
  if (engine_->sim_enabled()) {
    uint64_t bytes = column->size() * sizeof(storage::Value);
    double ns = engine_->cost_model().StreamNs(node_, node_, bytes) *
                static_cast<double>(g.commands.size());
    engine_->resource_usage().AddComputeNs(id_, ns);
    engine_->resource_usage().AddMemoryTraffic(node_, node_,
                                               bytes * g.commands.size());
    group_modeled_ns_ += ns;
  }
}

// ---------------------------------------------------------------------------
// Fused query pipelines & MPSM sort-merge join (DESIGN.md §13)
// ---------------------------------------------------------------------------

void Aeu::ProcessPipelineGroup(const Group& g) {
  // g.object is the driving filter column; every job of the group shares
  // it (the dequeue grouping that lets pipelines scan-share the driving
  // column like kScanColumn groups do).
  storage::Partition* part = partition(g.object);
  storage::MvccColumn* f1 = part->mvcc_column();
  ERIS_CHECK(f1 != nullptr) << "pipeline on keyed object";
  pipeline_jobs_.clear();
  uint64_t now = 0;
  for (const routing::CommandView& cmd : g.commands) {
    if (cmd.header.deadline_ns != 0) {
      if (now == 0) now = MonotonicNanos();
      if (now > cmd.header.deadline_ns) {
        ExpireCommand(cmd);
        continue;
      }
    }
    PipelineJob job;
    job.p = cmd.PayloadAs<routing::PipelineParams>()[0];
    job.sink = cmd.header.sink;
    if (job.p.filter2_object != routing::kNoPipelineColumn) {
      job.f2 = partition(job.p.filter2_object)->mvcc_column();
      ERIS_CHECK(job.f2 != nullptr) << "pipeline filter on keyed object";
    }
    job.agg = partition(job.p.agg_object)->mvcc_column();
    ERIS_CHECK(job.agg != nullptr) << "pipeline aggregate on keyed object";
    // Visible prefix: the minimum over the group's member columns. The
    // group is co-partitioned, so the members agree except for straggler
    // rows of concurrent appends, which no snapshot of the pipeline sees.
    auto vis = [&](const storage::MvccColumn* c) {
      return job.p.snapshot_ts == ~uint64_t{0} ? c->size()
                                               : c->VisibleSize(job.p.snapshot_ts);
    };
    job.visible = vis(f1);
    job.visible = std::min(job.visible, vis(job.agg));
    if (job.f2 != nullptr) job.visible = std::min(job.visible, vis(job.f2));
    job.fast = f1->undo_chains() == 0 && job.agg->undo_chains() == 0 &&
               (job.f2 == nullptr || job.f2->undo_chains() == 0);
    pipeline_jobs_.push_back(job);
  }

  const storage::ColumnStore& c1 = f1->column();
  constexpr uint64_t kCap = storage::ColumnStore::kSegmentCapacity;
  uint64_t f1_bytes = 0;   // driving column, streamed once per segment
  uint64_t f2_bytes = 0;   // refining filter gathers (per job)
  uint64_t agg_bytes = 0;  // aggregate gathers (per job)

  // --- fused, vectorized path: one pass, selection vectors in cache ---
  pipeline_fused_.clear();
  uint64_t max_visible = 0;
  for (PipelineJob& j : pipeline_jobs_) {
    if (j.fast && (j.p.flags & routing::kPipelineFused) != 0) {
      pipeline_fused_.push_back(&j);
      max_visible = std::max(max_visible, j.visible);
      ++stats_.pipelines_fused;
    }
  }
  for (size_t s = 0; s * kCap < max_visible; ++s) {
    std::span<const storage::Value> seg1 = c1.Segment(s);
    const storage::TupleId base = s * kCap;
    const storage::ZoneMap& z1 = c1.zone(s);
    uint64_t seg_streamed = 0;
    for (PipelineJob* jp : pipeline_fused_) {
      PipelineJob& j = *jp;
      if (base >= j.visible) continue;
      uint64_t m = std::min<uint64_t>(seg1.size(), j.visible - base);
      // Zone-map pruning runs before the filter kernel: an excluded
      // segment costs only its zone-map read.
      if (z1.Excludes(j.p.lo, j.p.hi)) {
        ++stats_.pipeline_segments_pruned;
        continue;
      }
      // Operator 1 — filter: selection vector of matching positions.
      // `full` short-circuits a fully covered segment (identity selection).
      bool full = z1.CoveredBy(j.p.lo, j.p.hi);
      uint32_t cnt = static_cast<uint32_t>(m);
      if (!full) {
        sel_.resize(m);
        cnt = simd::FilterIndices(seg1.data(), m, j.p.lo, j.p.hi, sel_.data());
        seg_streamed = std::max<uint64_t>(seg_streamed,
                                          m * sizeof(storage::Value));
      }
      if (cnt == 0) continue;
      // Operator 2 — refining filter over the carried selection vector.
      if (j.f2 != nullptr) {
        const storage::ColumnStore& c2 = j.f2->column();
        std::span<const storage::Value> seg2 = c2.Segment(s);
        const storage::ZoneMap& z2 = c2.zone(s);
        if (z2.Excludes(j.p.lo2, j.p.hi2)) {
          ++stats_.pipeline_segments_pruned;
          continue;
        }
        if (!z2.CoveredBy(j.p.lo2, j.p.hi2)) {
          if (full) {
            sel_.resize(m);
            cnt = simd::FilterIndices(seg2.data(), m, j.p.lo2, j.p.hi2,
                                      sel_.data());
            f2_bytes += m * sizeof(storage::Value);
            full = false;
          } else {
            f2_bytes += cnt * sizeof(storage::Value);
            cnt = simd::FilterIndicesSel(seg2.data(), sel_.data(), cnt,
                                         j.p.lo2, j.p.hi2, sel_.data());
          }
          if (cnt == 0) continue;
        }
      }
      // Operator 3 — aggregate: gather-sum through the selection vector.
      const storage::ColumnStore& ca = j.agg->column();
      std::span<const storage::Value> sega = ca.Segment(s);
      if (full) {
        j.sum += simd::SumAll(sega.data(), m);
        j.rows += m;
        agg_bytes += m * sizeof(storage::Value);
      } else {
        j.sum += simd::GatherSumSel(sega.data(), sel_.data(), cnt);
        j.rows += cnt;
        agg_bytes += cnt * sizeof(storage::Value);
      }
    }
    f1_bytes += seg_streamed;
  }

  // --- operator-at-a-time baseline (the fusion ablation): one full pass
  // per operator, a materialized intermediate index vector, no zone maps ---
  for (PipelineJob& j : pipeline_jobs_) {
    if (!j.fast || (j.p.flags & routing::kPipelineFused) != 0) continue;
    ++stats_.pipelines_baseline;
    mat_idx_.resize(j.visible);
    uint64_t cnt = 0;
    for (size_t s = 0; s * kCap < j.visible; ++s) {
      std::span<const storage::Value> seg = c1.Segment(s);
      const storage::TupleId base = s * kCap;
      uint64_t m = std::min<uint64_t>(seg.size(), j.visible - base);
      cnt += simd::ScanCollect(seg.data(), m, j.p.lo, j.p.hi, base,
                               mat_idx_.data() + cnt);
    }
    // Full column pass + writing the materialized index vector.
    f1_bytes += j.visible * sizeof(storage::Value) + cnt * sizeof(uint64_t);
    if (j.f2 != nullptr) {
      const storage::ColumnStore& c2 = j.f2->column();
      uint64_t kept = 0;
      f2_bytes += 2 * cnt * sizeof(uint64_t);  // reread indices + gather
      for (uint64_t i = 0; i < cnt; ++i) {
        uint64_t idx = mat_idx_[i];
        storage::Value v = c2.Segment(idx / kCap)[idx % kCap];
        if (v >= j.p.lo2 && v <= j.p.hi2) mat_idx_[kept++] = idx;
      }
      f2_bytes += kept * sizeof(uint64_t);  // rewrite the survivors
      cnt = kept;
    }
    const storage::ColumnStore& ca = j.agg->column();
    agg_bytes += 2 * cnt * sizeof(uint64_t);
    for (uint64_t i = 0; i < cnt; ++i) {
      uint64_t idx = mat_idx_[i];
      j.sum += ca.Segment(idx / kCap)[idx % kCap];
    }
    j.rows = cnt;
  }

  // --- MVCC fallback: versioned member columns read tuple-at-a-time ---
  for (PipelineJob& j : pipeline_jobs_) {
    if (j.fast) continue;
    for (storage::TupleId tid = 0; tid < j.visible; ++tid) {
      storage::Value v1 = f1->Read(tid, j.p.snapshot_ts);
      if (v1 < j.p.lo || v1 > j.p.hi) continue;
      if (j.f2 != nullptr) {
        storage::Value v2 = j.f2->Read(tid, j.p.snapshot_ts);
        if (v2 < j.p.lo2 || v2 > j.p.hi2) continue;
      }
      ++j.rows;
      j.sum += j.agg->Read(tid, j.p.snapshot_ts);
    }
    uint64_t cols = 2 + (j.f2 != nullptr ? 1 : 0);
    f1_bytes += j.visible * sizeof(storage::Value) * cols;
  }

  for (PipelineJob& j : pipeline_jobs_) {
    if (j.sink != nullptr) {
      j.sink->OnScanPartial(j.rows, j.sum);
      j.sink->OnCommandComplete(1);
    }
  }
  if (pipeline_fused_.size() > 1) stats_.scans_coalesced += pipeline_fused_.size() - 1;
  stats_.pipeline_filter_bytes += f1_bytes;
  stats_.pipeline_filter2_bytes += f2_bytes;
  stats_.pipeline_agg_bytes += agg_bytes;
  group_ops_ += pipeline_jobs_.size();
  if (engine_->sim_enabled()) {
    sim::ResourceUsage& ru = engine_->resource_usage();
    uint64_t bytes = f1_bytes + f2_bytes + agg_bytes;
    double ns = engine_->cost_model().StreamNs(node_, node_, bytes);
    ru.AddComputeNs(id_, ns);
    ru.AddMemoryTraffic(node_, node_, bytes);
    group_modeled_ns_ += ns;
  }
}

void Aeu::BuildLocalRun(storage::ObjectId object,
                        routing::QueryArenaVec<routing::KeyValue>* out) {
  out->clear();
  storage::Partition* part = partition(object);
  const storage::KeyRange& r = part->range();
  part->IndexRangeScan(r.lo, r.hi, [&](storage::Key k, storage::Value v) {
    out->push_back(routing::KeyValue{k, v});
  });
  if (part->index() == nullptr) {
    // Hash containers scan unordered: the MPSM in-place local sort.
    std::sort(out->begin(), out->end(),
              [](const routing::KeyValue& a, const routing::KeyValue& b) {
                return a.key < b.key;
              });
    ++stats_.join_runs_sorted;
  }
}

Aeu::JoinStage* Aeu::FindOrCreateStage(uint64_t join_id) {
  JoinStage* free_slot = nullptr;
  for (auto& s : join_stages_) {
    if (s->active && s->join_id == join_id) return s.get();
    if (!s->active && free_slot == nullptr) free_slot = s.get();
  }
  if (free_slot == nullptr) {
    join_stages_.push_back(
        std::make_unique<JoinStage>(&engine_->memory().manager(node_)));
    free_slot = join_stages_.back().get();
  }
  free_slot->join_id = join_id;
  free_slot->active = true;
  free_slot->entries.clear();
  return free_slot;
}

bool Aeu::JoinAlreadyMerged(uint64_t join_id) const {
  if (join_id == 0) return false;
  for (uint64_t id : merged_join_ids_) {
    if (id == join_id) return true;
  }
  return false;
}

void Aeu::ProcessJoinScatterGroup(const Group& g) {
  for (const routing::CommandView& cmd : g.commands) {
    routing::MergeJoinParams p = cmd.PayloadAs<routing::MergeJoinParams>()[0];
    if (p.strategy == routing::JoinStrategy::kSharedHash) {
      // Shared-hash baseline: every local R key becomes a routed lookup
      // into the hash-partitioned S — probe traffic crosses links
      // uniformly, the cost MPSM's range alignment avoids.
      BuildLocalRun(p.r_object, &join_run_);
      join_keys_.clear();
      for (const routing::KeyValue& kv : join_run_) {
        join_keys_.push_back(kv.key);
      }
      if (!join_keys_.empty()) {
        endpoint_.set_deadline_ns(cmd.header.deadline_ns);
        endpoint_.SendLookupBatch(p.s_object, join_keys_, p.result_sink);
        endpoint_.set_deadline_ns(0);
      }
      if (cmd.header.sink != nullptr) {
        cmd.header.sink->OnScanPartial(join_run_.size(), 0);
        cmd.header.sink->OnCommandComplete(1);
      }
    } else {
      // MPSM scatter: sort the local S run in place, keep the key ranges
      // this AEU also owns on the R side, exchange only the ranges that
      // straddle R's partition boundaries.
      BuildLocalRun(p.s_object, &join_run_);
      storage::Partition* rpart = partition(p.r_object);
      join_out_.clear();
      JoinStage* stage = nullptr;
      uint64_t kept = 0;
      for (const routing::KeyValue& kv : join_run_) {
        if (rpart->range().Contains(kv.key)) {
          if (stage == nullptr) stage = FindOrCreateStage(p.join_id);
          stage->entries.push_back(kv);
          ++kept;
        } else {
          join_out_.push_back(kv);
        }
      }
      stats_.join_entries_local += kept;
      stats_.join_entries_exchanged += join_out_.size();
      if (!join_out_.empty()) {
        routing::JoinStageParams sp;
        sp.join_id = p.join_id;
        sp.result_sink = p.result_sink;
        endpoint_.set_deadline_ns(cmd.header.deadline_ns);
        endpoint_.SendJoinStage(p.r_object, sp, join_out_, nullptr);
        endpoint_.set_deadline_ns(0);
      }
      if (cmd.header.sink != nullptr) {
        cmd.header.sink->OnScanPartial(join_run_.size(), 0);
        cmd.header.sink->OnCommandComplete(1);
      }
    }
    if (engine_->sim_enabled()) {
      uint64_t bytes = join_run_.size() * sizeof(routing::KeyValue);
      sim::ResourceUsage& ru = engine_->resource_usage();
      double ns = engine_->cost_model().StreamNs(node_, node_, bytes);
      ru.AddComputeNs(id_, ns);
      ru.AddMemoryTraffic(node_, node_, bytes);
      group_modeled_ns_ += ns;
    }
  }
  group_ops_ += g.commands.size();
}

void Aeu::ProcessJoinStageGroup(const Group& g) {
  for (const routing::CommandView& cmd : g.commands) {
    routing::JoinStageParams sp;
    std::memcpy(&sp, cmd.payload, sizeof(sp));
    std::span<const routing::KeyValue> entries{
        reinterpret_cast<const routing::KeyValue*>(cmd.payload + sizeof(sp)),
        (cmd.header.payload_bytes - sizeof(sp)) / sizeof(routing::KeyValue)};
    storage::Partition* rpart = partition(g.object);
    if (JoinAlreadyMerged(sp.join_id)) {
      // The merge for this join already ran here (ownership moved under a
      // concurrent rebalance): resolve the stragglers through the routed
      // lookup path, which forwards/defers correctly on its own.
      join_keys_.clear();
      for (const routing::KeyValue& kv : entries) join_keys_.push_back(kv.key);
      endpoint_.set_deadline_ns(cmd.header.deadline_ns);
      endpoint_.SendLookupBatch(g.object, join_keys_, sp.result_sink);
      endpoint_.set_deadline_ns(0);
      stats_.join_boundary_lookups += entries.size();
    } else {
      JoinStage* stage = nullptr;
      join_out_.clear();
      for (const routing::KeyValue& kv : entries) {
        if (rpart->range().Contains(kv.key) ||
            InPendingRange(g.object, kv.key)) {
          if (stage == nullptr) stage = FindOrCreateStage(sp.join_id);
          stage->entries.push_back(kv);
        } else {
          join_out_.push_back(kv);
        }
      }
      if (!join_out_.empty()) {
        // Ownership moved since the scatter routed this chunk: forward to
        // the current owners.
        endpoint_.set_deadline_ns(cmd.header.deadline_ns);
        endpoint_.SendJoinStage(g.object, sp, join_out_, nullptr);
        endpoint_.set_deadline_ns(0);
        ++stats_.commands_forwarded;
      }
    }
    if (cmd.header.sink != nullptr) cmd.header.sink->OnCommandComplete(1);
  }
  group_ops_ += g.commands.size();
}

void Aeu::ProcessJoinMergeGroup(const Group& g) {
  for (const routing::CommandView& cmd : g.commands) {
    routing::MergeJoinParams p = cmd.PayloadAs<routing::MergeJoinParams>()[0];
    // Mark merged before consuming the stage: staged entries arriving
    // after this point resolve via routed lookups (see ProcessJoinStage).
    merged_join_ids_[merged_join_pos_++ % kMergedRing] = p.join_id;
    uint64_t matches = 0;
    uint64_t key_sum = 0;
    JoinStage* stage = nullptr;
    for (auto& s : join_stages_) {
      if (s->active && s->join_id == p.join_id) {
        stage = s.get();
        break;
      }
    }
    if (stage != nullptr) {
      // The staged run is a concatenation of per-source sorted chunks:
      // sort it in place, then merge linearly against the local R run.
      std::sort(stage->entries.begin(), stage->entries.end(),
                [](const routing::KeyValue& a, const routing::KeyValue& b) {
                  return a.key < b.key;
                });
      ++stats_.join_runs_sorted;
      storage::Partition* rpart = partition(p.r_object);
      BuildLocalRun(p.r_object, &join_run_);
      join_keys_.clear();
      size_t k = 0;
      for (const routing::KeyValue& e : stage->entries) {
        if (!rpart->range().Contains(e.key) ||
            InPendingRange(p.r_object, e.key)) {
          // Moved away (or still in flight) under a concurrent rebalance:
          // the routed lookup path resolves it at the current owner.
          join_keys_.push_back(e.key);
          continue;
        }
        while (k < join_run_.size() && join_run_[k].key < e.key) ++k;
        if (k < join_run_.size() && join_run_[k].key == e.key) {
          ++matches;
          key_sum += e.key;
        }
      }
      if (!join_keys_.empty()) {
        endpoint_.set_deadline_ns(cmd.header.deadline_ns);
        endpoint_.SendLookupBatch(p.r_object, join_keys_, p.result_sink);
        endpoint_.set_deadline_ns(0);
        stats_.join_boundary_lookups += join_keys_.size();
      }
      if (engine_->sim_enabled()) {
        uint64_t bytes = (stage->entries.size() + join_run_.size()) *
                         sizeof(routing::KeyValue);
        sim::ResourceUsage& ru = engine_->resource_usage();
        double ns = engine_->cost_model().StreamNs(node_, node_, bytes);
        ru.AddComputeNs(id_, ns);
        ru.AddMemoryTraffic(node_, node_, bytes);
        group_modeled_ns_ += ns;
      }
      stage->active = false;
      stage->entries.clear();
    }
    if (p.result_sink != nullptr) {
      p.result_sink->OnScanPartial(matches, key_sum);
    }
    if (cmd.header.sink != nullptr) cmd.header.sink->OnCommandComplete(1);
  }
  group_ops_ += g.commands.size();
}

void Aeu::ProcessFence(const routing::CommandView& cmd) {
  if (cmd.header.sink != nullptr) cmd.header.sink->OnCommandComplete(1);
}

// ---------------------------------------------------------------------------
// Balancing
// ---------------------------------------------------------------------------

void Aeu::HandleBalanceRange(const routing::CommandView& cmd) {
  ERIS_INJECT_POINT(kBalanceApply);
  const uint8_t* p = cmd.payload;
  BalanceRangeHeader hdr;
  std::memcpy(&hdr, p, sizeof(hdr));
  storage::ObjectId object = cmd.header.object;
  if (wal_ != nullptr) {
    WalLogEffect(routing::CommandType::kWalSetRange, object,
                 {reinterpret_cast<const uint8_t*>(&hdr.new_range),
                  sizeof(hdr.new_range)});
  }
  partition(object)->set_range(hdr.new_range);
  if (hdr.num_fetches == 0) {
    if (cmd.header.sink != nullptr) cmd.header.sink->OnCommandComplete(1);
    return;
  }
  balance_tickets_.push_back(
      BalanceTicket{object, cmd.header.sink, hdr.num_fetches});
  for (uint32_t i = 0; i < hdr.num_fetches; ++i) {
    FetchInstr f;
    std::memcpy(&f, p + sizeof(hdr) + i * sizeof(FetchInstr), sizeof(f));
    pending_fetches_.push_back(PendingFetch{object, f.range});
    TransferRequest req;
    req.range = f.range;
    req.requester = id_;
    req.is_physical = 0;
    endpoint_.SendControl(f.source, routing::CommandType::kTransferRequest,
                          object,
                          {reinterpret_cast<const uint8_t*>(&req),
                           sizeof(req)},
                          nullptr);
  }
}

void Aeu::HandleBalancePhysical(const routing::CommandView& cmd) {
  ERIS_INJECT_POINT(kBalanceApply);
  const uint8_t* p = cmd.payload;
  BalancePhysicalHeader hdr;
  std::memcpy(&hdr, p, sizeof(hdr));
  storage::ObjectId object = cmd.header.object;
  if (hdr.num_fetches == 0) {
    if (cmd.header.sink != nullptr) cmd.header.sink->OnCommandComplete(1);
    return;
  }
  balance_tickets_.push_back(
      BalanceTicket{object, cmd.header.sink, hdr.num_fetches});
  for (uint32_t i = 0; i < hdr.num_fetches; ++i) {
    PhysFetchInstr f;
    std::memcpy(&f, p + sizeof(hdr) + i * sizeof(PhysFetchInstr), sizeof(f));
    TransferRequest req;
    req.tuples = f.tuples;
    req.requester = id_;
    req.is_physical = 1;
    endpoint_.SendControl(f.source, routing::CommandType::kTransferRequest,
                          object,
                          {reinterpret_cast<const uint8_t*>(&req),
                           sizeof(req)},
                          nullptr);
  }
}

void Aeu::HandleTransferRequest(const routing::CommandView& cmd) {
  ERIS_INJECT_POINT(kTransferApply);
  TransferRequest req;
  std::memcpy(&req, cmd.payload, sizeof(req));
  storage::ObjectId object = cmd.header.object;
  storage::Partition* part = partition(object);
  // Log the donor-side effect before mutating: the moved piece is logged
  // again (as plain writes) by the receiving AEU when it installs it.
  if (wal_ != nullptr) {
    if (req.is_physical) {
      uint64_t tuples = std::min<uint64_t>(req.tuples, part->tuple_count());
      WalLogEffect(routing::CommandType::kWalSplitTail, object,
                   {reinterpret_cast<const uint8_t*>(&tuples),
                    sizeof(tuples)});
    } else {
      WalLogEffect(routing::CommandType::kWalExtractRange, object,
                   {reinterpret_cast<const uint8_t*>(&req.range),
                    sizeof(req.range)});
    }
  }
  storage::Partition moved =
      req.is_physical
          ? part->SplitOffTail(std::min<uint64_t>(req.tuples,
                                                  part->tuple_count()))
          : part->ExtractRange(req.range.lo, req.range.hi);
  if (!req.is_physical) {
    // The donor's own balancing command may not have arrived yet; shrink
    // the declared range now so commands for the extracted piece are
    // forwarded instead of answered as local misses. Extracted pieces are
    // always edge pieces of the declared range.
    storage::KeyRange declared = part->range();
    if (req.range.lo <= declared.lo && req.range.hi > declared.lo) {
      declared.lo = req.range.hi;
    } else if (req.range.hi >= declared.hi && req.range.lo < declared.hi) {
      declared.hi = req.range.lo;
    }
    if (declared.lo <= declared.hi) {
      if (wal_ != nullptr) {
        WalLogEffect(routing::CommandType::kWalSetRange, object,
                     {reinterpret_cast<const uint8_t*>(&declared),
                      sizeof(declared)});
      }
      part->set_range(declared);
    }
  }
  engine_->monitor().RecordSize(id_, object, part->tuple_count(),
                                part->memory_bytes());
  const bool same_node = engine_->NodeOfAeu(req.requester) == node_;
  if (same_node) {
    // Link transfer: hand the partition over in place; both AEUs share the
    // node's memory manager, so the receiver can splice the structures.
    auto* heap = new storage::Partition(std::move(moved));
    InstallHeader hdr;
    hdr.range = req.range;
    hdr.source = id_;
    hdr.is_link = 1;
    hdr.is_final = 1;
    hdr.is_physical = req.is_physical;
    hdr.linked = heap;
    endpoint_.SendControl(req.requester,
                          routing::CommandType::kInstallPartition, object,
                          {reinterpret_cast<const uint8_t*>(&hdr),
                           sizeof(hdr)},
                          nullptr);
    ++stats_.link_transfers;
  } else {
    SendCopyTransfer(object, req.range, req.requester,
                     req.is_physical != 0, std::move(moved));
    ++stats_.copy_transfers;
  }
}

void Aeu::SendCopyTransfer(storage::ObjectId object, storage::KeyRange range,
                           routing::AeuId requester, bool is_physical,
                           storage::Partition&& part) {
  // Flatten to the exchange format and stream it in chunks small enough
  // for the incoming buffers.
  const size_t kChunkEntries = 2048;
  InstallHeader hdr;
  hdr.range = range;
  hdr.source = id_;
  hdr.is_link = 0;
  hdr.is_final = 0;
  hdr.is_physical = is_physical ? 1 : 0;
  hdr.linked = nullptr;

  scratch_payload_.clear();
  auto flush_chunk = [&](bool final) {
    hdr.is_final = final ? 1 : 0;
    transfer_payload_.resize(sizeof(hdr) + scratch_payload_.size());
    std::memcpy(transfer_payload_.data(), &hdr, sizeof(hdr));
    if (!scratch_payload_.empty()) {
      std::memcpy(transfer_payload_.data() + sizeof(hdr),
                  scratch_payload_.data(), scratch_payload_.size());
    }
    endpoint_.SendControl(requester,
                          routing::CommandType::kInstallPartition, object,
                          transfer_payload_, nullptr);
    stats_.bytes_copied += transfer_payload_.size();
    scratch_payload_.clear();
  };

  if (is_physical) {
    const storage::MvccColumn* column = part.mvcc_column();
    uint64_t n = column->size();
    uint64_t i = 0;
    column->column().ForEach([&](storage::TupleId, storage::Value v) {
      scratch_payload_.append(reinterpret_cast<const uint8_t*>(&v),
                              sizeof(v));
      ++i;
      if (scratch_payload_.size() >= kChunkEntries * sizeof(v) && i < n) {
        flush_chunk(false);
      }
    });
  } else if (part.index() != nullptr) {
    uint64_t n = part.index()->size();
    uint64_t i = 0;
    part.index()->ForEach([&](storage::Key k, storage::Value v) {
      routing::KeyValue kv{k, v};
      scratch_payload_.append(reinterpret_cast<const uint8_t*>(&kv),
                              sizeof(kv));
      ++i;
      if (scratch_payload_.size() >= kChunkEntries * sizeof(kv) && i < n) {
        flush_chunk(false);
      }
    });
  } else {
    part.hash()->ForEach([&](storage::Key k, storage::Value v) {
      routing::KeyValue kv{k, v};
      scratch_payload_.append(reinterpret_cast<const uint8_t*>(&kv),
                              sizeof(kv));
      if (scratch_payload_.size() >= kChunkEntries * sizeof(kv)) {
        flush_chunk(false);
      }
    });
  }
  flush_chunk(true);  // final chunk (possibly empty)
}

void Aeu::HandleInstall(const routing::CommandView& cmd) {
  ERIS_INJECT_POINT(kTransferApply);
  InstallHeader hdr;
  std::memcpy(&hdr, cmd.payload, sizeof(hdr));
  storage::ObjectId object = cmd.header.object;
  storage::Partition* part = partition(object);
  if (hdr.is_link) {
    auto* linked = static_cast<storage::Partition*>(hdr.linked);
    // Link transfers never flatten, so the receiver logs the absorbed
    // contents as ordinary write effects before splicing them in.
    if (wal_ != nullptr) WalLogPartitionContents(object, *linked);
    storage::KeyRange keep = part->range();
    part->Absorb(std::move(*linked), engine_->oracle().NextWriteTs());
    part->set_range(keep);  // declared range was set by the balance command
    delete linked;
    ++stats_.link_transfers;
  } else {
    std::span<const uint8_t> entries(cmd.payload + sizeof(hdr),
                                     cmd.header.payload_bytes - sizeof(hdr));
    if (wal_ != nullptr && !entries.empty()) {
      WalLogEffect(hdr.is_physical ? routing::CommandType::kAppendBatch
                                   : routing::CommandType::kUpsertBatch,
                   object, entries);
    }
    if (hdr.is_physical) {
      uint64_t ts = engine_->oracle().NextWriteTs();
      size_t n = entries.size() / sizeof(storage::Value);
      for (size_t i = 0; i < n; ++i) {
        storage::Value v;
        std::memcpy(&v, entries.data() + i * sizeof(v), sizeof(v));
        part->ColumnAppend(v, ts);
      }
    } else {
      size_t n = entries.size() / sizeof(routing::KeyValue);
      for (size_t i = 0; i < n; ++i) {
        routing::KeyValue kv;
        std::memcpy(&kv, entries.data() + i * sizeof(kv), sizeof(kv));
        part->Upsert(kv.key, kv.value);
      }
    }
  }
  engine_->monitor().RecordSize(id_, object, part->tuple_count(),
                                part->memory_bytes());
  if (hdr.is_final) {
    CompleteFetch(object, hdr.is_physical ? storage::KeyRange{0, 0}
                                          : hdr.range);
  }
}

void Aeu::CompleteFetch(storage::ObjectId object, storage::KeyRange range) {
  // Drop the pending marker (physical transfers have no range marker).
  for (size_t i = 0; i < pending_fetches_.size(); ++i) {
    if (pending_fetches_[i].object == object &&
        pending_fetches_[i].range.lo == range.lo &&
        pending_fetches_[i].range.hi == range.hi) {
      pending_fetches_.erase(pending_fetches_.begin() +
                             static_cast<ptrdiff_t>(i));
      break;
    }
  }
  for (size_t i = 0; i < balance_tickets_.size(); ++i) {
    BalanceTicket& t = balance_tickets_[i];
    if (t.object != object) continue;
    if (--t.outstanding == 0) {
      if (t.sink != nullptr) t.sink->OnCommandComplete(1);
      balance_tickets_.erase(balance_tickets_.begin() +
                             static_cast<ptrdiff_t>(i));
    }
    break;
  }
}

// ---------------------------------------------------------------------------
// Monitoring & simulated costs
// ---------------------------------------------------------------------------

void Aeu::RecordGroupMetrics(storage::ObjectId object, uint64_t ops,
                             double exec_ns) {
  if (ops == 0) return;
  engine_->monitor().RecordAccess(id_, object, ops, exec_ns);
}

void Aeu::ChargePointOps(storage::ObjectId object, uint64_t ops,
                         bool is_write) {
  if (!engine_->sim_enabled() || ops == 0) return;
  storage::Partition* part = partition(object);
  sim::TreeShape shape = ShapeOf(*part);
  sim::PointOpCost cost = sim::BatchPointOpCost(
      engine_->cost_model(), node_, node_, shape,
      engine_->llc_budget_per_aeu(), ops, /*interleaved=*/false, is_write,
      /*coherence_writes=*/false);
  // Routed commands pay the routing layer's CPU cost (target lookup,
  // buffer append/drain) — the overhead the shared baseline avoids.
  cost.compute_ns += static_cast<double>(ops) *
                     engine_->cost_model().params().routing_cpu_ns;
  sim::ResourceUsage& ru = engine_->resource_usage();
  ru.AddComputeNs(id_, cost.compute_ns);
  ru.AddMemoryTraffic(node_, node_, cost.dram_bytes);
  group_modeled_ns_ += cost.compute_ns;
}

void Aeu::ChargeLookupOps(storage::ObjectId object, uint64_t keys,
                          uint64_t nodes_touched) {
  if (!engine_->sim_enabled() || keys == 0) return;
  storage::Partition* part = partition(object);
  sim::TreeShape shape = ShapeOf(*part);
  // The analytic model prices one op as a full root-to-leaf descent
  // (`levels` node touches). A coalesced batch that shares descent paths
  // touches fewer unique nodes, so convert the measured node count back
  // into effective ops; scalar probes (nodes_touched == 0) pay per key.
  uint64_t ops = keys;
  if (nodes_touched > 0 && shape.levels > 0) {
    ops = std::min(keys, (nodes_touched + shape.levels - 1) / shape.levels);
    ops = std::max<uint64_t>(ops, 1);
  }
  sim::PointOpCost cost = sim::BatchPointOpCost(
      engine_->cost_model(), node_, node_, shape,
      engine_->llc_budget_per_aeu(), ops, /*interleaved=*/false,
      /*is_write=*/false, /*coherence_writes=*/false);
  // Routing CPU (target lookup, buffer append/drain) is per key: every key
  // traveled through the router regardless of descent sharing.
  cost.compute_ns += static_cast<double>(keys) *
                     engine_->cost_model().params().routing_cpu_ns;
  sim::ResourceUsage& ru = engine_->resource_usage();
  ru.AddComputeNs(id_, cost.compute_ns);
  ru.AddMemoryTraffic(node_, node_, cost.dram_bytes);
  group_modeled_ns_ += cost.compute_ns;
}

void Aeu::ChargeRoutingCosts() {
  if (!engine_->sim_enabled()) return;
  const routing::EndpointStats& es = endpoint_.stats();
  uint64_t delta_bytes = es.bytes_flushed - last_bytes_flushed_;
  uint64_t delta_flushes = es.flushes - last_flushes_;
  if (delta_bytes == 0 && delta_flushes == 0) return;
  last_bytes_flushed_ = es.bytes_flushed;
  last_flushes_ = es.flushes;
  const sim::CostModelParams& p = engine_->cost_model().params();
  double ns = static_cast<double>(delta_bytes) / p.copy_gbps +
              static_cast<double>(delta_flushes) *
                  engine_->cost_model().FlushOverheadNs(node_);
  engine_->resource_usage().AddComputeNs(id_, ns);
}

// ---------------------------------------------------------------------------
// Thread body
// ---------------------------------------------------------------------------

void Aeu::ThreadMain() {
  if (engine_->options().pin_threads) {
    numa::PinCurrentThreadToCore(id_).ok();
  }
  uint32_t idle = 0;
  while (!engine_->stop_.load(std::memory_order_acquire)) {
    if (engine_->pause_.load(std::memory_order_acquire)) {
      // Snapshot parking: the engine needs every loop off its partitions
      // (and off its WAL) while it flattens a consistent image.
      engine_->paused_count_.fetch_add(1, std::memory_order_acq_rel);
      while (engine_->pause_.load(std::memory_order_acquire) &&
             !engine_->stop_.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      engine_->paused_count_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    if (RunLoopIteration()) {
      idle = 0;
      continue;
    }
    if (++idle > 64) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    } else {
      CpuRelax();
    }
  }
  // Final drain so shutdown leaves no queued commands behind (with a WAL
  // attached this also commits and delivers the last deferred acks).
  RunLoopIteration();
  engine_->memory().manager(node_).FlushThisThreadCache();
}

// ---------------------------------------------------------------------------
// Durability (DESIGN.md §14)
// ---------------------------------------------------------------------------

void Aeu::ReplacePartition(storage::ObjectId object,
                           storage::Partition&& part) {
  ERIS_CHECK_LT(object, num_partitions_.load(std::memory_order_acquire));
  partitions_[object] =
      std::make_unique<storage::Partition>(std::move(part));
}

Status Aeu::WalLogEffect(routing::CommandType type, storage::ObjectId object,
                         std::span<const uint8_t> payload) {
  routing::CommandHeader h;
  h.type = type;
  h.object = static_cast<uint16_t>(object);
  h.source = id_;
  // Never persisted as meaningful state: replay ignores both.
  h.deadline_ns = 0;
  h.sink = nullptr;
  wal_scratch_.clear();
  routing::EncodeCommand(h, payload, &wal_scratch_);
  // A sealed-log failure (the log just sealed, possibly via an inline
  // backpressure commit) needs no handling here: the command that hit it
  // is applied-but-unlogged — crash-equivalent, its ack is shed with
  // kWalSealed at CommitWalAndAck — and every later command is dropped up
  // front by the sealed() guards in the write handlers. A ResourceExhausted
  // failure (injected group-buffer allocation) is recoverable and the data
  // handlers shed the effect instead of applying it.
  Status st = wal_->Append(wal_scratch_);
  if (st.ok()) ++stats_.wal_records;
  return st;
}

void Aeu::WalLogPartitionContents(storage::ObjectId object,
                                  const storage::Partition& part) {
  // Bound each record so a huge absorbed partition cannot blow the group
  // buffer (backpressure may inline-commit between chunks, which is fine:
  // the chunks are idempotent upserts/appends).
  constexpr size_t kChunk = 4096;
  if (const storage::MvccColumn* column = part.mvcc_column()) {
    scratch_values_.clear();
    auto flush = [&] {
      if (scratch_values_.empty()) return;
      WalLogEffect(routing::CommandType::kAppendBatch, object,
                   {reinterpret_cast<const uint8_t*>(scratch_values_.data()),
                    scratch_values_.size() * sizeof(storage::Value)});
      scratch_values_.clear();
    };
    column->column().ForEach([&](storage::TupleId, storage::Value v) {
      scratch_values_.push_back(v);
      if (scratch_values_.size() >= kChunk) flush();
    });
    flush();
    return;
  }
  scratch_kvs_.clear();
  auto flush = [&] {
    if (scratch_kvs_.empty()) return;
    WalLogEffect(routing::CommandType::kUpsertBatch, object,
                 {reinterpret_cast<const uint8_t*>(scratch_kvs_.data()),
                  scratch_kvs_.size() * sizeof(routing::KeyValue)});
    scratch_kvs_.clear();
  };
  auto collect = [&](storage::Key k, storage::Value v) {
    scratch_kvs_.push_back(routing::KeyValue{k, v});
    if (scratch_kvs_.size() >= kChunk) flush();
  };
  if (part.index() != nullptr) {
    part.index()->ForEach(collect);
  } else if (part.hash() != nullptr) {
    part.hash()->ForEach(collect);
  }
  flush();
}

void Aeu::CommitWalAndAck() {
  uint64_t committed = 0;
  Status st = wal_->Commit(&committed);
  if (committed > 0) ++stats_.wal_commits;
  stats_.wal_stalls = wal_->stats().stalls;
  if (!st.ok()) {
    // The group never became durable (the log just sealed, or was already
    // sealed when this iteration's records were appended). Acknowledging
    // would break acknowledged ⇒ durable, so shed every pending ack with a
    // typed drop reason — waiters complete with kWalSealed instead of
    // hanging — and hand the fail-stop to the engine for quarantine.
    for (const PendingAck& ack : pending_acks_) {
      ack.sink->OnCommandDropped(ack.units, routing::DropReason::kWalSealed);
      stats_.wal_drops += ack.units;
    }
    pending_acks_.clear();
    engine_->OnWalSealed(id_, st);
    return;
  }
  // Acks are delivered even when this commit was a no-op: a mid-iteration
  // backpressure commit may already have made their records durable.
  for (const PendingAck& ack : pending_acks_) {
    ack.sink->OnWriteBatch(ack.applied);
    ack.sink->OnCommandComplete(ack.units);
  }
  pending_acks_.clear();
}

void Aeu::AckWrite(routing::ResultSink* sink, uint64_t applied,
                   uint64_t units) {
  if (wal_ != nullptr) {
    // Held until the iteration-end group commit: acknowledged ⇒ durable.
    pending_acks_.push_back(PendingAck{sink, applied, units});
  } else {
    sink->OnWriteBatch(applied);
    sink->OnCommandComplete(units);
  }
}

void Aeu::FlushWal() {
  if (wal_ == nullptr) return;
  CommitWalAndAck();
}

}  // namespace eris::core
