// Engine configuration.
#pragma once

#include <cstdint>

#include "core/load_balancer.h"
#include "durability/wal.h"
#include "numa/topology.h"
#include "routing/router.h"
#include "sim/cost_model.h"

namespace eris::core {

/// How AEUs execute.
enum class ExecutionMode : uint8_t {
  /// One pinned std::thread per AEU (production mode).
  kThreads = 0,
  /// AEU loops run cooperatively inside Engine::PumpAll()/DriveUntil();
  /// deterministic and independent of host core count. Used with the
  /// simulated-time accounting to reproduce the paper's large machines on
  /// small hosts.
  kSimulated = 1,
};

/// Simulated-time accounting (see eris::sim).
struct SimOptions {
  /// Master switch: when off, no modeled costs are recorded.
  bool enabled = false;
  sim::CostModelParams cost;
  /// Modeled last-level cache per NUMA node. Benches that down-scale data
  /// sizes scale this down by the same factor so cached fractions match.
  double llc_bytes_per_node = 12.0 * 1024 * 1024;
};

/// Overload-control knobs: admission, deadlines, watchdog, quarantine.
struct OverloadOptions {
  /// In-flight completion-unit budget enforced at submit time by the
  /// engine's admission controller; 0 disables admission control.
  uint64_t max_inflight_units = 0;
  /// Relative deadline stamped on Submit* commands when the session sets
  /// none; 0 means no default deadline.
  uint64_t default_deadline_ns = 0;
  /// Run the AEU heartbeat watchdog on a background thread (kThreads mode;
  /// simulated engines call Engine::CheckAeuHealth() explicitly).
  bool watchdog = false;
  uint32_t watchdog_interval_ms = 50;
  /// Consecutive observations with a static heartbeat and pending work
  /// before an AEU is declared stalled.
  uint32_t watchdog_strikes = 3;
  /// Processing attempts before a poison command (one that repeatedly
  /// crashes its handler) is quarantined to the dead-letter log.
  uint32_t max_command_retries = 3;
};

/// Point-lookup fast-path knobs (DESIGN.md §12). Both default on; turning
/// one off selects the per-key baseline for benches (bench_ext_lookup) and
/// the concurrency harness' shape rotation.
struct LookupPathOptions {
  /// Coalesce every kLookupBatch command of one dequeue group into a single
  /// index probe over the concatenated keys (results are still delivered
  /// per command). Off = probe each command separately.
  bool coalesce_commands = true;
  /// Use the software-pipelined BatchLookup descent (prefetching, several
  /// probes in flight). Off = scalar per-key probes.
  bool pipelined_descent = true;
};

struct EngineOptions {
  numa::Topology topology = numa::Topology::DetectHost();
  /// 0 = one AEU per core of the topology.
  uint32_t num_aeus = 0;
  ExecutionMode mode = ExecutionMode::kThreads;
  /// Pin AEU threads to cores (thread mode; best effort).
  bool pin_threads = true;
  routing::RouterConfig router;
  /// Load balancer defaults (used by RebalanceAll and the background loop).
  LoadBalancerConfig balancer;
  /// Run the periodic balancing loop on a background thread (thread mode).
  bool balancer_background = false;
  SimOptions sim;
  OverloadOptions overload;
  LookupPathOptions lookup;
  /// Durability tier (DESIGN.md §14): per-AEU group-commit WAL, engine
  /// snapshots and recovery-on-start. Disabled = purely in-memory.
  durability::DurabilityOptions durability;
  /// Shutdown drain window: Stop() gives in-flight work this long to
  /// quiesce (so outstanding group commits reach the log and their
  /// deferred acknowledgements are delivered) before AEU threads join.
  uint32_t stop_drain_ms = 250;
};

}  // namespace eris::core
