#include "core/load_balancer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace eris::core {

const char* BalanceAlgorithmName(BalanceAlgorithm a) {
  switch (a) {
    case BalanceAlgorithm::kNone: return "none";
    case BalanceAlgorithm::kOneShot: return "one-shot";
    case BalanceAlgorithm::kMovingAverage: return "moving-average";
  }
  return "?";
}

std::vector<double> MovingAverageSmooth(const std::vector<double>& metric,
                                        uint32_t k) {
  const size_t n = metric.size();
  std::vector<double> out(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    size_t lo = i >= k ? i - k : 0;
    size_t hi = std::min(n - 1, i + k);
    double sum = 0;
    for (size_t j = lo; j <= hi; ++j) sum += metric[j];
    out[i] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

double CoefficientOfVariation(const std::vector<double>& metric) {
  if (metric.empty()) return 0.0;
  double n = static_cast<double>(metric.size());
  double sum = 0;
  for (double m : metric) sum += m;
  if (sum <= 0) return 0.0;
  double mean = sum / n;
  double var = 0;
  for (double m : metric) var += (m - mean) * (m - mean);
  var /= n;
  return std::sqrt(var) / mean;
}

std::vector<storage::Key> ComputeTargetBoundaries(
    const std::vector<routing::RangeEntry>& current,
    const std::vector<double>& metric, BalanceAlgorithm algorithm,
    uint32_t ma_window, storage::Key domain_hi) {
  const size_t n = current.size();
  ERIS_CHECK_EQ(metric.size(), n);
  std::vector<storage::Key> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = current[i].hi;
  if (n <= 1 || algorithm == BalanceAlgorithm::kNone) return out;

  double total = 0;
  for (double m : metric) total += m;
  if (total <= 0) return out;

  // Target load share of each partition-position.
  std::vector<double> shares(n, 1.0);
  if (algorithm == BalanceAlgorithm::kMovingAverage) {
    shares = MovingAverageSmooth(metric, ma_window);
    // Never starve a partition to a zero-width range: a cold partition
    // keeps at least a tenth of the average share, so the partitioning
    // stays stable when the hot region later moves over it.
    double mean_share = 0;
    for (double v : shares) mean_share += v;
    mean_share /= static_cast<double>(n);
    for (double& v : shares) v = std::max(v, 0.1 * mean_share);
  }
  double share_total = 0;
  for (double s : shares) share_total += s;
  if (share_total <= 0) return out;

  // Helper: lo bound of current range i.
  auto lo_of = [&](size_t i) -> storage::Key {
    return i == 0 ? storage::kMinKey : current[i - 1].hi;
  };

  // Piecewise-linear inverse of the measured cumulative distribution.
  double cum_target = 0;
  size_t r = 0;          // current source range
  double cum_before_r = 0;
  for (size_t j = 0; j + 1 < n; ++j) {
    cum_target += shares[j] / share_total * total;
    // Advance r until the target mass falls inside range r.
    while (r + 1 < n && cum_before_r + metric[r] < cum_target) {
      cum_before_r += metric[r];
      ++r;
    }
    storage::Key lo = lo_of(r);
    storage::Key hi = current[r].hi;
    // The last range's hi is the kMaxKey routing sentinel; interpolate
    // within the actual key domain instead.
    if (hi == storage::kMaxKey && domain_hi != storage::kMaxKey) {
      hi = std::max<storage::Key>(domain_hi, lo + 1);
    }
    storage::Key span = hi - lo;
    double frac = metric[r] > 0
                      ? (cum_target - cum_before_r) / metric[r]
                      : 1.0;
    frac = std::clamp(frac, 0.0, 1.0);
    double off = frac * static_cast<double>(span);
    storage::Key key_off = off >= static_cast<double>(span)
                               ? span
                               : static_cast<storage::Key>(off);
    storage::Key boundary = lo + key_off;
    // Keep boundaries strictly increasing and below the domain end.
    storage::Key min_allowed = (j == 0 ? storage::kMinKey : out[j - 1]) + 1;
    boundary = std::max(boundary, min_allowed);
    if (boundary >= current.back().hi) boundary = current.back().hi - (n - 1 - j);
    out[j] = boundary;
  }
  out[n - 1] = current.back().hi;  // kMaxKey
  // Final monotonicity pass (defensive against clamping collisions).
  for (size_t j = 1; j < n; ++j) {
    if (out[j] <= out[j - 1]) out[j] = out[j - 1] + 1;
  }
  out[n - 1] = current.back().hi;
  return out;
}

size_t RebalancePlan::num_fetches() const {
  size_t c = 0;
  for (const auto& a : aeus) c += a.fetches.size();
  return c;
}

RebalancePlan BuildRangePlan(const std::vector<routing::RangeEntry>& current,
                             const std::vector<storage::Key>& new_his) {
  const size_t n = current.size();
  ERIS_CHECK_EQ(new_his.size(), n);
  RebalancePlan plan;
  plan.new_entries.resize(n);
  for (size_t i = 0; i < n; ++i) {
    plan.new_entries[i].hi = new_his[i];
    plan.new_entries[i].owner = current[i].owner;
  }

  auto old_lo = [&](size_t i) {
    return i == 0 ? storage::kMinKey : current[i - 1].hi;
  };
  auto new_lo = [&](size_t i) {
    return i == 0 ? storage::kMinKey : new_his[i - 1];
  };

  for (size_t i = 0; i < n; ++i) {
    storage::KeyRange nr{new_lo(i), new_his[i]};
    storage::KeyRange orng{old_lo(i), current[i].hi};
    RebalancePlan::AeuPlan aeu_plan;
    aeu_plan.aeu = current[i].owner;
    aeu_plan.new_range = nr;
    // Fetch every piece of the new range another AEU currently holds.
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      storage::Key piece_lo = std::max(nr.lo, old_lo(j));
      storage::Key piece_hi = std::min(nr.hi, current[j].hi);
      if (piece_lo < piece_hi) {
        FetchInstr f;
        f.range = {piece_lo, piece_hi};
        f.source = current[j].owner;
        aeu_plan.fetches.push_back(f);
      }
    }
    bool changed = nr.lo != orng.lo || nr.hi != orng.hi;
    if (changed || !aeu_plan.fetches.empty()) {
      plan.aeus.push_back(std::move(aeu_plan));
    }
  }
  if (plan.aeus.empty()) plan.new_entries.clear();
  return plan;
}

PhysicalPlan BuildPhysicalPlan(const std::vector<uint64_t>& tuples,
                               const std::vector<uint32_t>& aeu_node,
                               uint64_t min_tuples) {
  const size_t n = tuples.size();
  ERIS_CHECK_EQ(aeu_node.size(), n);
  PhysicalPlan plan;
  if (n <= 1) return plan;
  uint64_t total = 0;
  for (uint64_t t : tuples) total += t;
  uint64_t target = total / n;

  // Signed imbalance per AEU (positive = surplus).
  std::vector<int64_t> delta(n);
  for (size_t i = 0; i < n; ++i)
    delta[i] = static_cast<int64_t>(tuples[i]) - static_cast<int64_t>(target);

  std::vector<std::vector<PhysFetchInstr>> fetches(n);
  auto match = [&](size_t donor, size_t receiver) {
    int64_t amount = std::min(delta[donor], -delta[receiver]);
    if (amount < static_cast<int64_t>(min_tuples)) return;
    delta[donor] -= amount;
    delta[receiver] += amount;
    PhysFetchInstr f;
    f.tuples = static_cast<uint64_t>(amount);
    f.source = static_cast<routing::AeuId>(donor);
    fetches[receiver].push_back(f);
  };

  // Pass 1: match surplus to deficit within each node (cheap link moves).
  for (size_t d = 0; d < n; ++d) {
    if (delta[d] <= 0) continue;
    for (size_t r = 0; r < n && delta[d] > 0; ++r) {
      if (delta[r] < 0 && aeu_node[r] == aeu_node[d]) match(d, r);
    }
  }
  // Pass 2: remaining imbalance crosses nodes (copy transfers).
  for (size_t d = 0; d < n; ++d) {
    if (delta[d] <= 0) continue;
    for (size_t r = 0; r < n && delta[d] > 0; ++r) {
      if (delta[r] < 0) match(d, r);
    }
  }

  for (size_t r = 0; r < n; ++r) {
    if (!fetches[r].empty()) {
      PhysicalPlan::AeuPlan p;
      p.aeu = static_cast<routing::AeuId>(r);
      p.fetches = std::move(fetches[r]);
      plan.aeus.push_back(std::move(p));
    }
  }
  return plan;
}

}  // namespace eris::core
