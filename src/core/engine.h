// Engine: the public façade of the ERIS storage engine.
//
// Owns the topology, the per-node memory managers, the routing layer, the
// AEUs, the monitor and the load balancer; exposes data-object creation and
// a Session for issuing storage operations (scan, lookup, insert/upsert)
// from client threads.
//
// Two execution modes share all code: kThreads runs one pinned thread per
// AEU and measures real time; kSimulated pumps the AEU loops cooperatively
// and, with SimOptions.enabled, attributes modeled costs (per Table 2 of
// the paper) to workers, links, and memory controllers so large NUMA
// machines can be reproduced deterministically on any host.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/spinlock.h"
#include "core/aeu.h"
#include "core/load_balancer.h"
#include "core/monitor.h"
#include "core/options.h"
#include "core/snapshot_tracker.h"
#include "numa/memory_manager.h"
#include "routing/router.h"
#include "sim/cost_model.h"
#include "sim/resource_usage.h"
#include "storage/data_object.h"
#include "storage/mvcc.h"

namespace eris::core {

/// Result of a scan operation.
struct ScanResult {
  uint64_t rows = 0;
  uint64_t sum = 0;
};

/// \brief The ERIS storage engine.
class Engine {
 public:
  explicit Engine(EngineOptions options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- Schema (before Start) --------------------------------------------
  /// Creates a range-partitioned prefix-tree index over [0, domain_hi).
  storage::ObjectId CreateIndex(std::string name, storage::Key domain_hi,
                                storage::PrefixTreeConfig config = {});
  /// Creates a physically partitioned append-only column.
  storage::ObjectId CreateColumn(std::string name);
  /// Creates a range-partitioned object stored as per-partition hash
  /// tables (independent hash function per partition).
  storage::ObjectId CreateHashTable(std::string name, storage::Key domain_hi);
  /// Creates a *hash-partitioned* prefix-tree index (the partitioning the
  /// paper argues against; kept for the ablation): lookups route by key
  /// hash, every range scan multicasts to all AEUs, and the load balancer
  /// skips the object (hash classes cannot be rebalanced by range).
  storage::ObjectId CreateHashedIndex(std::string name,
                                      storage::Key domain_hi,
                                      storage::PrefixTreeConfig config = {});

  /// Starts the AEUs (spawns threads in kThreads mode).
  void Start();
  /// Stops and joins all engine threads. Idempotent.
  void Stop();
  bool started() const { return started_; }

  // --- Component access ---------------------------------------------------
  const EngineOptions& options() const { return options_; }
  const numa::Topology& topology() const { return options_.topology; }
  routing::Router& router() { return *router_; }
  numa::MemoryPool& memory() { return *memory_; }
  Monitor& monitor() { return *monitor_; }
  storage::TimestampOracle& oracle() { return oracle_; }
  SnapshotTracker& snapshots() { return snapshots_; }
  uint32_t num_aeus() const { return num_aeus_; }
  Aeu& aeu(routing::AeuId a) { return *aeus_[a]; }
  const storage::DataObjectDesc& object(storage::ObjectId id) const {
    return *objects_[id];
  }
  size_t num_objects() const { return objects_.size(); }

  /// NUMA node AEU `a` runs on.
  numa::NodeId NodeOfAeu(routing::AeuId a) const {
    return options_.topology.NodeOfCore(a % options_.topology.total_cores());
  }

  // --- Simulated-time accounting ------------------------------------------
  bool sim_enabled() const { return options_.sim.enabled; }
  const sim::CostModel& cost_model() const { return *cost_model_; }
  sim::ResourceUsage& resource_usage() { return *usage_; }
  /// Modeled LLC budget of one AEU (node LLC / cores per node).
  double llc_budget_per_aeu() const { return llc_budget_per_aeu_; }

  // --- Driving --------------------------------------------------------------
  /// One cooperative pass over all AEUs (kSimulated; also usable in thread
  /// mode before Start). Returns true when any AEU made progress.
  bool PumpAll();

  /// Blocks until pred() is true; in kSimulated mode progress is made by
  /// pumping the AEUs inline.
  template <typename Pred>
  void DriveUntil(Pred&& pred) {
    uint64_t idle = 0;
    while (!pred()) {
      if (options_.mode == ExecutionMode::kSimulated || !started_) {
        if (PumpAll()) {
          idle = 0;
        } else {
          ++idle;
          ERIS_CHECK_LT(idle, 1u << 22)
              << "engine quiesced without satisfying the wait condition";
        }
      } else {
        std::this_thread::yield();
      }
    }
  }

  // --- Load balancing -----------------------------------------------------
  /// Runs one synchronous balancing cycle for `object` with `config`.
  /// Returns true when a rebalance was triggered and completed.
  bool RebalanceObject(storage::ObjectId object,
                       const LoadBalancerConfig& config);
  /// Balancing cycle for every object with the engine's default config.
  bool RebalanceAll();

  /// Advisory barrier: returns once every AEU mailbox is empty and no AEU
  /// holds undelivered or deferred commands, observed stably over several
  /// passes. The query layer uses it after operators whose AEUs fan out
  /// follow-up commands (materializing scans, join probes).
  void Quiesce();

  // --- Sessions -------------------------------------------------------------
  /// \brief Client-side handle for issuing storage operations.
  ///
  /// One session per client thread (not thread-safe internally).
  class Session {
   public:
    /// `node` is the NUMA node this client notionally runs on (used for
    /// traffic attribution); CreateSession() assigns nodes round-robin.
    explicit Session(Engine* engine, numa::NodeId node = 0);

    /// Point lookups; returns the number of keys found.
    uint64_t Lookup(storage::ObjectId object,
                    std::span<const storage::Key> keys);
    /// Point lookups returning each key's value (nullopt = miss), ordered
    /// like `keys`.
    std::vector<std::optional<storage::Value>> LookupValues(
        storage::ObjectId object, std::span<const storage::Key> keys);
    /// Returns the number of newly inserted keys.
    uint64_t Insert(storage::ObjectId object,
                    std::span<const routing::KeyValue> kvs);
    /// Returns the number of newly inserted keys (existing were updated).
    uint64_t Upsert(storage::ObjectId object,
                    std::span<const routing::KeyValue> kvs);
    uint64_t Erase(storage::ObjectId object,
                   std::span<const storage::Key> keys);
    /// Appends values to a column (spread over the AEUs' partitions).
    void Append(storage::ObjectId object,
                std::span<const storage::Value> values);
    /// Full scan of a column with value filter [lo, hi] at the latest
    /// snapshot.
    ScanResult ScanColumn(storage::ObjectId object, storage::Value lo = 0,
                          storage::Value hi = ~storage::Value{0});
    /// Full-aggregate scan: rows, sum, min, max over the filtered column.
    struct ColumnStats {
      uint64_t rows = 0;
      uint64_t sum = 0;
      storage::Value min = ~storage::Value{0};
      storage::Value max = 0;
      double avg = 0;
    };
    ColumnStats ScanStats(storage::ObjectId object, storage::Value lo = 0,
                          storage::Value hi = ~storage::Value{0});
    /// Index range scan over key_lo <= key < key_hi.
    ScanResult ScanIndexRange(storage::ObjectId object, storage::Key key_lo,
                              storage::Key key_hi);
    /// Barrier: returns once every AEU processed all commands this session
    /// sent before the fence.
    void Fence();

    routing::Endpoint& endpoint() { return endpoint_; }
    routing::AggregateSink& sink() { return sink_; }
    /// Flushes and blocks until `expected` completion units arrived for
    /// ops issued through sink() since the last Reset.
    void Wait(uint64_t expected);

   private:
    Engine* engine_;
    routing::Endpoint endpoint_;
    routing::AggregateSink sink_;
  };

  std::unique_ptr<Session> CreateSession();

  /// As CreateSession, pinning the client to a specific node.
  std::unique_ptr<Session> CreateSessionOnNode(numa::NodeId node);

  /// Multi-line human-readable engine report: per-node memory, per-AEU
  /// loop statistics, data objects with partition sizes and table shapes.
  std::string StatsReport();

 private:
  friend class Aeu;

  storage::ObjectId RegisterObject(storage::DataObjectDesc desc,
                                   storage::Key domain_hi);
  void BalancerThreadMain();

  EngineOptions options_;
  uint32_t num_aeus_ = 0;
  std::unique_ptr<numa::MemoryPool> memory_;
  std::unique_ptr<routing::Router> router_;
  std::unique_ptr<Monitor> monitor_;
  std::unique_ptr<sim::CostModel> cost_model_;
  std::unique_ptr<sim::ResourceUsage> usage_;
  double llc_budget_per_aeu_ = 0;
  storage::TimestampOracle oracle_;
  SnapshotTracker snapshots_;

  std::vector<std::unique_ptr<storage::DataObjectDesc>> objects_;
  std::vector<std::unique_ptr<Aeu>> aeus_;
  std::vector<std::thread> threads_;
  std::thread balancer_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> session_counter_{0};
  bool started_ = false;
};

}  // namespace eris::core
