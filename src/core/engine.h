// Engine: the public façade of the ERIS storage engine.
//
// Owns the topology, the per-node memory managers, the routing layer, the
// AEUs, the monitor and the load balancer; exposes data-object creation and
// a Session for issuing storage operations (scan, lookup, insert/upsert)
// from client threads.
//
// Two execution modes share all code: kThreads runs one pinned thread per
// AEU and measures real time; kSimulated pumps the AEU loops cooperatively
// and, with SimOptions.enabled, attributes modeled costs (per Table 2 of
// the paper) to workers, links, and memory controllers so large NUMA
// machines can be reproduced deterministically on any host.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/spinlock.h"
#include "common/status.h"
#include "core/aeu.h"
#include "core/load_balancer.h"
#include "core/monitor.h"
#include "core/options.h"
#include "core/snapshot_tracker.h"
#include "durability/manager.h"
#include "numa/memory_manager.h"
#include "routing/router.h"
#include "sim/cost_model.h"
#include "sim/resource_usage.h"
#include "storage/data_object.h"
#include "storage/mvcc.h"

namespace eris::core {

/// Result of a scan operation.
struct ScanResult {
  uint64_t rows = 0;
  uint64_t sum = 0;
};

/// \brief Token-based admission control over in-flight completion units.
///
/// The fast path is a relaxed CAS loop on one counter; a submit that would
/// exceed the budget is rejected with a typed Status instead of queueing
/// onto already-full buffers. Budget 0 disables admission (every acquire
/// succeeds without touching the counter).
class AdmissionController {
 public:
  explicit AdmissionController(uint64_t budget) : budget_(budget) {}

  bool TryAcquire(uint64_t units) {
    if (budget_ == 0) return true;
    uint64_t cur = inflight_.load(std::memory_order_relaxed);
    while (cur + units <= budget_) {
      if (inflight_.compare_exchange_weak(cur, cur + units,
                                          std::memory_order_relaxed)) {
        return true;
      }
    }
    rejections_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  void Release(uint64_t units) {
    if (budget_ == 0) return;
    inflight_.fetch_sub(units, std::memory_order_relaxed);
  }

  uint64_t budget() const { return budget_; }
  uint64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  uint64_t rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }
  /// Counts a submit rejected before it acquired units (degraded-mode
  /// fail-fast), so storage-fault shedding shows up in the same place
  /// admission shedding does.
  void RecordRejection() {
    rejections_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  uint64_t budget_;
  std::atomic<uint64_t> inflight_{0};
  std::atomic<uint64_t> rejections_{0};
};

/// \brief The ERIS storage engine.
class Engine {
 public:
  explicit Engine(EngineOptions options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- Schema (before Start) --------------------------------------------
  /// Creates a range-partitioned prefix-tree index over [0, domain_hi).
  storage::ObjectId CreateIndex(std::string name, storage::Key domain_hi,
                                storage::PrefixTreeConfig config = {});
  /// Creates a physically partitioned append-only column.
  storage::ObjectId CreateColumn(std::string name);
  /// Creates a range-partitioned object stored as per-partition hash
  /// tables (independent hash function per partition).
  storage::ObjectId CreateHashTable(std::string name, storage::Key domain_hi);
  /// Creates a *hash-partitioned* prefix-tree index (the partitioning the
  /// paper argues against; kept for the ablation): lookups route by key
  /// hash, every range scan multicasts to all AEUs, and the load balancer
  /// skips the object (hash classes cannot be rebalanced by range).
  storage::ObjectId CreateHashedIndex(std::string name,
                                      storage::Key domain_hi,
                                      storage::PrefixTreeConfig config = {});

  /// Starts the AEUs (spawns threads in kThreads mode). With durability
  /// enabled, runs Recover() first if the caller has not done so.
  void Start();
  /// Stops and joins all engine threads. Idempotent.
  ///
  /// Drain-then-quiesce contract (DESIGN.md §14): Stop() first gives
  /// in-flight work a bounded window (`stop_drain_ms`) to quiesce, then
  /// signals the AEU threads, whose final loop iteration commits any
  /// remaining WAL group before joining. Every operation acknowledged
  /// before Stop() returns is durable; operations still in flight when the
  /// drain window closes may be dropped, exactly as a crash would.
  void Stop();
  bool started() const { return started_; }

  // --- Durability (DESIGN.md §14) ----------------------------------------
  /// Restores the engine from its durability directory: rebuilds every
  /// partition from the live snapshot (if any), replays each AEU's WAL
  /// tail, rebuilds the range partition tables from the recovered ranges,
  /// and opens the WALs (truncating torn tails). Must run after schema
  /// registration and before Start(); the schema must match the snapshot.
  /// A fresh (or absent) directory recovers to the empty state and simply
  /// arms the WALs. Idempotent once recovered.
  Status Recover();

  /// Takes a consistent snapshot: quiesces, pauses the AEU threads,
  /// flattens every partition into snap-<epoch>, publishes it via CURRENT
  /// and truncates the WALs. Crash-atomic at every boundary — recovery
  /// always sees either the previous or the new snapshot, never a mix.
  /// Requires durability enabled and no concurrent client writes.
  Status Snapshot();

  /// Bounded Quiesce: returns true when every non-stalled AEU went idle
  /// (stably over several passes) within `timeout_ms`, false otherwise.
  /// Never CHECK-fails on a wedged engine — Stop() uses it as the drain
  /// phase of shutdown.
  bool TryQuiesce(uint64_t timeout_ms);

  durability::DurabilityManager* durability() { return durability_.get(); }
  bool recovered() const { return recovered_; }

  // --- Storage-fault tolerance (DESIGN.md §15) ---------------------------
  /// Fail-stop handler invoked (by the owning AEU thread) when AEU `a`'s
  /// WAL seals on a commit-path I/O error: seals the AEU's mailbox at the
  /// router, force-stalls it at the watchdog (sticky — CheckAeuHealth never
  /// unseals it), and flips the engine into degraded read-only mode.
  /// Idempotent and thread-safe.
  void OnWalSealed(routing::AeuId a, const Status& cause);

  /// True once AEU `a`'s WAL sealed fail-stop.
  bool WalSealed(routing::AeuId a) const {
    return wal_sealed_flags_[a].load(std::memory_order_acquire);
  }
  bool AnyWalSealed() const;

  /// Degraded read-only mode: reads/scans/joins keep serving, Submit-path
  /// writes fail fast with Status::Unavailable (detail kReadOnly) before
  /// admission, and rebalancing is suspended. Entered on a sealed WAL or a
  /// failed snapshot (e.g. ENOSPC); a later successful Snapshot() clears it
  /// unless a WAL is sealed (that engine must restart to write again).
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  std::string degraded_reason() const;
  void EnterDegradedMode(std::string reason);

  /// One storage-scrub pass over cold durable state (DESIGN.md §15).
  struct ScrubReport {
    uint64_t snapshots_checked = 0;
    uint64_t files_checked = 0;
    uint64_t corrupt_files = 0;
    uint64_t snapshots_quarantined = 0;
    uint64_t wals_checked = 0;
    uint64_t wal_torn_tails = 0;
    bool clean() const {
      return corrupt_files == 0 && wal_torn_tails == 0;
    }
  };

  /// CRC-verifies every on-disk snapshot and every cold WAL segment.
  /// Corrupt non-live snapshots are quarantined (renamed aside) so recovery
  /// can never pick them up; corruption in the live snapshot is reported
  /// but left in place (quarantining it would discard the only full copy).
  /// Runs periodically on a background thread when
  /// DurabilityOptions::scrub_interval_ms > 0; tests call it directly.
  Status ScrubStorage(ScrubReport* report);

  // --- Component access ---------------------------------------------------
  const EngineOptions& options() const { return options_; }
  const numa::Topology& topology() const { return options_.topology; }
  routing::Router& router() { return *router_; }
  numa::MemoryPool& memory() { return *memory_; }
  Monitor& monitor() { return *monitor_; }
  storage::TimestampOracle& oracle() { return oracle_; }
  SnapshotTracker& snapshots() { return snapshots_; }
  AdmissionController& admission() { return *admission_; }
  AeuWatchdog& watchdog() { return *watchdog_; }
  uint32_t num_aeus() const { return num_aeus_; }
  Aeu& aeu(routing::AeuId a) { return *aeus_[a]; }
  const storage::DataObjectDesc& object(storage::ObjectId id) const {
    return *objects_[id];
  }
  size_t num_objects() const { return objects_.size(); }

  /// NUMA node AEU `a` runs on.
  numa::NodeId NodeOfAeu(routing::AeuId a) const {
    return options_.topology.NodeOfCore(a % options_.topology.total_cores());
  }

  // --- Simulated-time accounting ------------------------------------------
  bool sim_enabled() const { return options_.sim.enabled; }
  const sim::CostModel& cost_model() const { return *cost_model_; }
  sim::ResourceUsage& resource_usage() { return *usage_; }
  /// Modeled LLC budget of one AEU (node LLC / cores per node).
  double llc_budget_per_aeu() const { return llc_budget_per_aeu_; }

  // --- Driving --------------------------------------------------------------
  /// One cooperative pass over all AEUs (kSimulated; also usable in thread
  /// mode before Start). Returns true when any AEU made progress.
  bool PumpAll();

  /// Blocks until pred() is true; in kSimulated mode progress is made by
  /// pumping the AEUs inline.
  template <typename Pred>
  void DriveUntil(Pred&& pred) {
    uint64_t idle = 0;
    while (!pred()) {
      if (options_.mode == ExecutionMode::kSimulated || !started_) {
        if (PumpAll()) {
          idle = 0;
        } else {
          ++idle;
          ERIS_CHECK_LT(idle, 1u << 22)
              << "engine quiesced without satisfying the wait condition";
        }
      } else {
        std::this_thread::yield();
      }
    }
  }

  // --- Load balancing -----------------------------------------------------
  /// Runs one synchronous balancing cycle for `object` with `config`.
  /// Returns true when a rebalance was triggered and completed.
  bool RebalanceObject(storage::ObjectId object,
                       const LoadBalancerConfig& config);
  /// Balancing cycle for every object with the engine's default config.
  bool RebalanceAll();

  /// Advisory barrier: returns once every AEU mailbox is empty and no AEU
  /// holds undelivered or deferred commands, observed stably over several
  /// passes. The query layer uses it after operators whose AEUs fan out
  /// follow-up commands (materializing scans, join probes). AEUs the
  /// watchdog marked stalled are excluded (their mailboxes never drain).
  void Quiesce();

  /// One watchdog pass: observes every AEU's heartbeat and flags/unflags
  /// stalled AEUs at the router. Runs periodically on the watchdog thread
  /// in kThreads mode (OverloadOptions::watchdog); simulated engines and
  /// tests call it explicitly.
  void CheckAeuHealth();

  // --- Sessions -------------------------------------------------------------
  /// \brief Client-side handle for issuing storage operations.
  ///
  /// One session per client thread (not thread-safe internally).
  class Session {
   public:
    /// `node` is the NUMA node this client notionally runs on (used for
    /// traffic attribution); CreateSession() assigns nodes round-robin.
    explicit Session(Engine* engine, numa::NodeId node = 0);

    /// Point lookups; returns the number of keys found.
    uint64_t Lookup(storage::ObjectId object,
                    std::span<const storage::Key> keys);
    /// Point lookups returning each key's value (nullopt = miss), ordered
    /// like `keys`.
    std::vector<std::optional<storage::Value>> LookupValues(
        storage::ObjectId object, std::span<const storage::Key> keys);
    /// Returns the number of newly inserted keys.
    uint64_t Insert(storage::ObjectId object,
                    std::span<const routing::KeyValue> kvs);
    /// Returns the number of newly inserted keys (existing were updated).
    uint64_t Upsert(storage::ObjectId object,
                    std::span<const routing::KeyValue> kvs);
    uint64_t Erase(storage::ObjectId object,
                   std::span<const storage::Key> keys);
    /// Appends values to a column (spread over the AEUs' partitions).
    void Append(storage::ObjectId object,
                std::span<const storage::Value> values);
    /// Full scan of a column with value filter [lo, hi] at the latest
    /// snapshot.
    ScanResult ScanColumn(storage::ObjectId object, storage::Value lo = 0,
                          storage::Value hi = ~storage::Value{0});
    /// Full-aggregate scan: rows, sum, min, max over the filtered column.
    struct ColumnStats {
      uint64_t rows = 0;
      uint64_t sum = 0;
      storage::Value min = ~storage::Value{0};
      storage::Value max = 0;
      double avg = 0;
    };
    ColumnStats ScanStats(storage::ObjectId object, storage::Value lo = 0,
                          storage::Value hi = ~storage::Value{0});
    /// Index range scan over key_lo <= key < key_hi.
    ScanResult ScanIndexRange(storage::ObjectId object, storage::Key key_lo,
                              storage::Key key_hi);
    /// Barrier: returns once every AEU processed all commands this session
    /// sent before the fence.
    void Fence();

    // --- Overload-aware submits -----------------------------------------
    // Unlike the blocking operations above, Submit* go through admission
    // control, stamp the session's op timeout as a command deadline, and
    // return a typed Status instead of blocking indefinitely: OK,
    // ResourceExhausted (admission / shed), DeadlineExceeded (expired or
    // timed out), Unavailable (target AEU stalled), Internal (poison
    // command quarantined).

    /// Per-unit breakdown of one submit (all counts in completion units).
    struct SubmitOutcome {
      uint64_t units = 0;        ///< completion units the submit expected
      uint64_t hits = 0;         ///< found / newly-inserted / applied
      uint64_t shed = 0;         ///< dropped: delivery retries exhausted
      uint64_t stalled = 0;      ///< dropped: target AEU quarantined
      uint64_t expired = 0;      ///< dropped: deadline passed at dequeue
      uint64_t quarantined = 0;  ///< dropped: poison command dead-lettered
      uint64_t wal_sealed = 0;   ///< dropped: target AEU's WAL sealed
      uint64_t alloc_failed = 0; ///< dropped: arena/pool allocation failed
    };

    /// Relative deadline stamped on Submit* commands; 0 falls back to
    /// OverloadOptions::default_deadline_ns (0 = no deadline).
    void set_op_timeout_ns(uint64_t timeout_ns) {
      op_timeout_ns_ = timeout_ns;
    }
    uint64_t op_timeout_ns() const { return op_timeout_ns_; }

    Status SubmitInsert(storage::ObjectId object,
                        std::span<const routing::KeyValue> kvs,
                        SubmitOutcome* out = nullptr);
    Status SubmitUpsert(storage::ObjectId object,
                        std::span<const routing::KeyValue> kvs,
                        SubmitOutcome* out = nullptr);
    Status SubmitErase(storage::ObjectId object,
                       std::span<const storage::Key> keys,
                       SubmitOutcome* out = nullptr);
    Status SubmitLookup(storage::ObjectId object,
                        std::span<const storage::Key> keys,
                        SubmitOutcome* out = nullptr);
    Status SubmitAppend(storage::ObjectId object,
                        std::span<const storage::Value> values,
                        SubmitOutcome* out = nullptr);
    Status SubmitScanStats(storage::ObjectId object, storage::Value lo,
                           storage::Value hi, ColumnStats* stats,
                           SubmitOutcome* out = nullptr);

    routing::Endpoint& endpoint() { return endpoint_; }
    routing::AggregateSink& sink() { return sink_; }
    /// Flushes and blocks until `expected` completion units arrived for
    /// ops issued through sink() since the last Reset.
    void Wait(uint64_t expected);

   private:
    /// Shared submit path: admission, deadline stamping, bounded wait,
    /// drop accounting, and the Status mapping. `send` issues the commands
    /// and returns the expected completion units; `observe` (optional)
    /// reads aggregate results off the sink after a complete wait.
    Status SubmitCommon(
        uint64_t admission_units,
        const std::function<size_t(routing::AggregateSink*)>& send,
        SubmitOutcome* out,
        const std::function<void(const routing::AggregateSink&)>& observe =
            {});
    /// Waits for `expected` units with an absolute wall-clock bail-out
    /// (deadline_abs + grace; 0 = wait for quiescence). Returns whether
    /// every unit arrived.
    bool WaitForUnits(routing::AggregateSink* sink, uint64_t expected,
                      uint64_t deadline_abs);
    /// Degraded-mode gate for Submit-path writes: fails fast with
    /// Status::Unavailable (detail kReadOnly) before admission, counting
    /// the rejection at the AdmissionController. OK when not degraded.
    Status CheckWritable(SubmitOutcome* out);

    Engine* engine_;
    routing::Endpoint endpoint_;
    routing::AggregateSink sink_;
    uint64_t op_timeout_ns_ = 0;
  };

  std::unique_ptr<Session> CreateSession();

  /// As CreateSession, pinning the client to a specific node.
  std::unique_ptr<Session> CreateSessionOnNode(numa::NodeId node);

  /// Multi-line human-readable engine report: per-node memory, per-AEU
  /// loop statistics, data objects with partition sizes and table shapes.
  std::string StatsReport();

 private:
  friend class Aeu;

  storage::ObjectId RegisterObject(storage::DataObjectDesc desc,
                                   storage::Key domain_hi);
  void BalancerThreadMain();
  void WatchdogThreadMain();
  void ScrubberThreadMain();

  /// Applies one WAL effect record to AEU `a`'s partitions (recovery
  /// replay). Records for objects not re-registered before Recover() —
  /// query-layer intermediates — are skipped.
  void ApplyWalRecord(routing::AeuId a, std::span<const uint8_t> body);
  /// Rebuilds every range object's routing table from the recovered
  /// per-AEU partition ranges (they already include replayed balance
  /// effects); validates the ranges tile the key domain.
  Status RebuildRangeTables();
  /// Snapshot() body once the engine is quiesced and (in thread mode)
  /// every AEU thread is parked.
  Status WriteSnapshotFiles();

  /// Parks a sink whose submit bailed on its deadline while completion
  /// units were still in flight: late completions write into the retired
  /// sink instead of freed memory. Freed when the engine is destroyed.
  void RetireSink(std::unique_ptr<routing::AggregateSink> sink);

  EngineOptions options_;
  uint32_t num_aeus_ = 0;
  std::unique_ptr<numa::MemoryPool> memory_;
  std::unique_ptr<routing::Router> router_;
  std::unique_ptr<Monitor> monitor_;
  std::unique_ptr<sim::CostModel> cost_model_;
  std::unique_ptr<sim::ResourceUsage> usage_;
  double llc_budget_per_aeu_ = 0;
  storage::TimestampOracle oracle_;
  SnapshotTracker snapshots_;

  std::vector<std::unique_ptr<storage::DataObjectDesc>> objects_;
  std::vector<std::unique_ptr<Aeu>> aeus_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<AeuWatchdog> watchdog_;
  SpinLock retired_lock_;
  std::vector<std::unique_ptr<routing::AggregateSink>> retired_sinks_;
  std::vector<std::thread> threads_;
  std::thread balancer_thread_;
  std::thread watchdog_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> session_counter_{0};
  bool started_ = false;

  // --- durability state (DESIGN.md §14) ---
  std::unique_ptr<durability::DurabilityManager> durability_;
  bool recovered_ = false;
  uint64_t snapshot_epoch_ = 0;
  // --- storage-fault state (DESIGN.md §15) ---
  /// Per-AEU sticky "WAL sealed fail-stop" flags; once set, CheckAeuHealth
  /// never unseals the AEU's mailbox again.
  std::unique_ptr<std::atomic<bool>[]> wal_sealed_flags_;
  std::atomic<bool> degraded_{false};
  mutable SpinLock degraded_lock_;  ///< guards degraded_reason_
  std::string degraded_reason_;
  std::thread scrubber_thread_;
  /// Snapshot() parks the AEU threads here while it flattens partitions,
  /// so no loop (idle maintenance included) runs concurrently with the
  /// reads. ThreadMain checks pause_ each iteration and acknowledges via
  /// paused_count_.
  std::atomic<bool> pause_{false};
  std::atomic<uint32_t> paused_count_{0};
};

}  // namespace eris::core
