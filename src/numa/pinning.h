// Thread-to-core pinning (best effort).
//
// ERIS pins one AEU per hardware context. On hosts with fewer cores than
// configured AEUs (or in simulated mode) pinning silently degrades to a
// no-op so the engine stays functional everywhere.
#pragma once

#include "common/status.h"

namespace eris::numa {

/// Number of hardware execution contexts available to this process.
unsigned NumHardwareCores();

/// Pins the calling thread to `core` (modulo the available cores).
/// Returns non-OK only on unexpected kernel errors; an out-of-range core is
/// wrapped, not an error, so simulated topologies larger than the host work.
Status PinCurrentThreadToCore(unsigned core);

/// Core the calling thread currently runs on, or -1 when unknown.
int CurrentCore();

}  // namespace eris::numa
