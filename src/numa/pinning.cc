#include "numa/pinning.h"

#include <pthread.h>
#include <sched.h>

#include <cstring>
#include <thread>

namespace eris::numa {

unsigned NumHardwareCores() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

Status PinCurrentThreadToCore(unsigned core) {
  unsigned target = core % NumHardwareCores();
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(target, &set);
  int rc = pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  if (rc != 0) {
    // Containers frequently restrict affinity; treat as best effort.
    return Status::Ok();
  }
  return Status::Ok();
}

int CurrentCore() {
  int cpu = sched_getcpu();
  return cpu < 0 ? -1 : cpu;
}

}  // namespace eris::numa
