#include "numa/topology.h"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>

#include "common/logging.h"

namespace eris::numa {

namespace {

// Widest-shortest-path search: among all minimum-hop paths from src, picks
// for every destination the one maximizing the bottleneck link bandwidth
// (deterministic tie-break on predecessor order, which `rotation` shifts to
// discover alternative equal-hop paths). Fills hops/routes rows.
void WidestShortestPaths(uint32_t num_nodes, const std::vector<LinkSpec>& links,
                         NodeId src, uint32_t rotation,
                         std::vector<uint32_t>* hops,
                         std::vector<std::vector<LinkId>>* routes) {
  constexpr uint32_t kUnreached = ~uint32_t{0};
  std::vector<std::vector<std::pair<NodeId, LinkId>>> adj(num_nodes);
  for (LinkId id = 0; id < links.size(); ++id) {
    adj[links[id].a].emplace_back(links[id].b, id);
    adj[links[id].b].emplace_back(links[id].a, id);
  }
  for (auto& neighbors : adj) {
    if (!neighbors.empty()) {
      std::rotate(neighbors.begin(),
                  neighbors.begin() + rotation % neighbors.size(),
                  neighbors.end());
    }
  }
  std::vector<uint32_t> dist(num_nodes, kUnreached);
  std::vector<double> width(num_nodes, 0.0);
  std::vector<LinkId> via_link(num_nodes, 0);
  std::vector<NodeId> via_node(num_nodes, src);
  dist[src] = 0;
  width[src] = 1e300;
  std::deque<NodeId> frontier{src};
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop_front();
    for (auto [v, link] : adj[u]) {
      double w = std::min(width[u], links[link].bandwidth_gbps);
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        width[v] = w;
        via_link[v] = link;
        via_node[v] = u;
        frontier.push_back(v);
      } else if (dist[v] == dist[u] + 1 && w > width[v]) {
        width[v] = w;
        via_link[v] = link;
        via_node[v] = u;
      }  // equal width keeps the first-discovered predecessor
    }
  }
  for (NodeId dst = 0; dst < num_nodes; ++dst) {
    ERIS_CHECK(dist[dst] != kUnreached)
        << "node " << dst << " unreachable from " << src;
    (*hops)[dst] = dist[dst];
    std::vector<LinkId>& route = (*routes)[dst];
    route.clear();
    for (NodeId v = dst; v != src; v = via_node[v]) route.push_back(via_link[v]);
    std::reverse(route.begin(), route.end());
  }
}

}  // namespace

void Topology::ComputeRoutes() {
  hops_.assign(num_nodes_, std::vector<uint32_t>(num_nodes_, 0));
  routes_.assign(num_nodes_, std::vector<std::vector<std::vector<LinkId>>>(
                                 num_nodes_, {{}}));
  if (links_.empty()) return;  // flat machine: everything local
  for (NodeId src = 0; src < num_nodes_; ++src) {
    // Collect up to two distinct equal-hop routes per destination by
    // rotating the neighbor exploration order.
    for (uint32_t rotation = 0; rotation < 3; ++rotation) {
      std::vector<uint32_t> hops(num_nodes_);
      std::vector<std::vector<LinkId>> routes(num_nodes_);
      WidestShortestPaths(num_nodes_, links_, src, rotation, &hops, &routes);
      for (NodeId dst = 0; dst < num_nodes_; ++dst) {
        if (rotation == 0) {
          hops_[src][dst] = hops[dst];
          routes_[src][dst].assign(1, std::move(routes[dst]));
        } else if (hops[dst] == hops_[src][dst]) {
          auto& alternatives = routes_[src][dst];
          bool duplicate = false;
          for (const auto& r : alternatives) duplicate |= r == routes[dst];
          if (!duplicate) alternatives.push_back(std::move(routes[dst]));
        }
      }
    }
  }
}

uint32_t Topology::Diameter() const {
  uint32_t d = 0;
  for (const auto& row : hops_)
    for (uint32_t h : row) d = std::max(d, h);
  return d;
}

double Topology::AggregateLocalBandwidthGbps() const {
  double total = 0;
  for (NodeId n = 0; n < num_nodes_; ++n) total += bw_[n][n];
  return total;
}

Topology Topology::Flat(uint32_t num_nodes, uint32_t cores_per_node) {
  ERIS_CHECK_GE(num_nodes, 1u);
  ERIS_CHECK_GE(cores_per_node, 1u);
  Topology t;
  t.name_ = "flat-" + std::to_string(num_nodes) + "x" +
            std::to_string(cores_per_node);
  t.num_nodes_ = num_nodes;
  t.cores_per_node_ = cores_per_node;
  // Uniform memory: model every access with the Intel machine's local
  // characteristics so flat and NUMA configurations are comparable.
  t.bw_.assign(num_nodes, std::vector<double>(num_nodes, 26.7));
  t.lat_.assign(num_nodes, std::vector<double>(num_nodes, 129.0));
  // Fully connect distinct nodes so routes exist (zero-cost links).
  for (NodeId a = 0; a < num_nodes; ++a)
    for (NodeId b = a + 1; b < num_nodes; ++b)
      t.links_.push_back({a, b, 26.7, "uniform"});
  t.ComputeRoutes();
  return t;
}

Topology Topology::IntelMachine() {
  Topology t;
  t.name_ = "intel-4s";
  t.num_nodes_ = 4;
  t.cores_per_node_ = 10;
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = a + 1; b < 4; ++b) t.links_.push_back({a, b, 10.7, "QPI"});
  t.bw_.assign(4, std::vector<double>(4, 10.7));
  t.lat_.assign(4, std::vector<double>(4, 193.0));
  for (NodeId n = 0; n < 4; ++n) {
    t.bw_[n][n] = 26.7;
    t.lat_[n][n] = 129.0;
  }
  t.ComputeRoutes();
  return t;
}

Topology Topology::AmdMachine() {
  Topology t;
  t.name_ = "amd-8n";
  t.num_nodes_ = 8;
  t.cores_per_node_ = 8;
  // Wagner-graph wiring (ring + diagonals): 3-regular, diameter 2 — matches
  // the paper's description of 1- and 2-hop HyperTransport routes.
  // Diagonals (i, i+4) are the dedicated full-width links inside a package;
  // ring edges are 8-bit sublinks, alternating single/dual population.
  for (NodeId i = 0; i < 4; ++i)
    t.links_.push_back({i, i + 4, 5.8, "HT full"});
  for (NodeId i = 0; i < 8; ++i) {
    NodeId j = (i + 1) % 8;
    if (i % 2 == 0) {
      t.links_.push_back({i, j, 4.2, "HT split,single"});
    } else {
      t.links_.push_back({i, j, 2.9, "HT split,dual"});
    }
  }
  t.ComputeRoutes();
  // Classify each pair by hop count and bottleneck link (Table 2).
  t.bw_.assign(8, std::vector<double>(8, 0.0));
  t.lat_.assign(8, std::vector<double>(8, 0.0));
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId d = 0; d < 8; ++d) {
      if (s == d) {
        t.bw_[s][d] = 16.4;
        t.lat_[s][d] = 85.0;
        continue;
      }
      double bottleneck = 1e300;
      std::string_view kind = "HT full";
      for (LinkId id : t.routes_[s][d].front()) {
        if (t.links_[id].bandwidth_gbps < bottleneck) {
          bottleneck = t.links_[id].bandwidth_gbps;
          kind = t.links_[id].label;
        }
      }
      if (t.hops_[s][d] == 1) {
        if (kind == "HT full") {
          t.bw_[s][d] = 5.8;
          t.lat_[s][d] = 136.0;
        } else if (kind == "HT split,single") {
          t.bw_[s][d] = 4.2;
          t.lat_[s][d] = 152.0;
        } else {
          t.bw_[s][d] = 2.9;
          t.lat_[s][d] = 152.0;
        }
      } else {  // 2 hops
        if (kind == "HT split,dual") {
          t.bw_[s][d] = 1.8;
        } else {
          t.bw_[s][d] = 3.7;
        }
        t.lat_[s][d] = 196.0;
      }
    }
  }
  return t;
}

Topology Topology::SgiMachine(uint32_t num_nodes) {
  num_nodes = std::clamp<uint32_t>(num_nodes, 1, 64);
  Topology t;
  t.name_ = "sgi-uv2000-" + std::to_string(num_nodes) + "n";
  t.num_nodes_ = num_nodes;
  t.cores_per_node_ = 8;

  const uint32_t num_blades = (num_nodes + 1) / 2;
  // Blade graph: per IRU (8 blades) a 3D hypercube enhanced with the four
  // main diagonals (diameter 2); blade j of IRU k additionally connects to
  // blade j of IRUs k+1 and k+2 (mod #IRUs).
  const uint32_t num_irus = (num_blades + 7) / 8;
  std::set<std::pair<uint32_t, uint32_t>> blade_edges;
  auto add_edge = [&](uint32_t x, uint32_t y) {
    if (x == y || x >= num_blades || y >= num_blades) return;
    blade_edges.insert({std::min(x, y), std::max(x, y)});
  };
  for (uint32_t iru = 0; iru < num_irus; ++iru) {
    uint32_t base = iru * 8;
    for (uint32_t b = 0; b < 8; ++b) {
      for (uint32_t bit = 0; bit < 3; ++bit) add_edge(base + b, base + (b ^ (1u << bit)));
      add_edge(base + b, base + (b ^ 7u));  // enhancement diagonal
    }
    // Inter-IRU: each blade connects to its counterpart in the neighboring
    // IRUs (a ring over IRUs), i.e. two blades in other IRUs. This yields
    // the up-to-4-hop routes the paper measures.
    for (uint32_t b = 0; b < 8; ++b) {
      if (num_irus > 1) add_edge(base + b, ((iru + 1) % num_irus) * 8 + b);
    }
  }

  // Node-level links: the intra-blade QPI/HARP connection plus one
  // NUMALink6 per blade edge. For route attribution, inter-blade links are
  // anchored at the even (first) node of each blade; distance classes are
  // assigned from blade-level hop counts below, so this anchoring only
  // affects which LinkSpec carries the counted traffic.
  std::vector<LinkId> blade_qpi(num_blades, 0);
  for (uint32_t blade = 0; blade < num_blades; ++blade) {
    NodeId n0 = 2 * blade;
    NodeId n1 = 2 * blade + 1;
    if (n1 < num_nodes) {
      blade_qpi[blade] = static_cast<LinkId>(t.links_.size());
      t.links_.push_back({n0, n1, 9.5, "QPI-HARP"});
    }
  }
  for (auto [x, y] : blade_edges) {
    NodeId nx = 2 * x, ny = 2 * y;
    if (nx < num_nodes && ny < num_nodes)
      t.links_.push_back({nx, ny, 13.4, "NUMALink6"});
  }
  t.ComputeRoutes();

  // Distance classes from blade-level hops (Table 2, SGI column).
  auto blade_of = [](NodeId n) { return n / 2; };
  // Compute blade hop counts by BFS over blade_edges.
  std::vector<std::vector<uint32_t>> bhops(
      num_blades, std::vector<uint32_t>(num_blades, ~0u));
  {
    std::vector<std::vector<uint32_t>> badj(num_blades);
    for (auto [x, y] : blade_edges) {
      badj[x].push_back(y);
      badj[y].push_back(x);
    }
    for (uint32_t s = 0; s < num_blades; ++s) {
      bhops[s][s] = 0;
      std::deque<uint32_t> q{s};
      while (!q.empty()) {
        uint32_t u = q.front();
        q.pop_front();
        for (uint32_t v : badj[u]) {
          if (bhops[s][v] == ~0u) {
            bhops[s][v] = bhops[s][u] + 1;
            q.push_back(v);
          }
        }
      }
    }
  }
  t.bw_.assign(num_nodes, std::vector<double>(num_nodes, 0.0));
  t.lat_.assign(num_nodes, std::vector<double>(num_nodes, 0.0));
  for (NodeId s = 0; s < num_nodes; ++s) {
    for (NodeId d = 0; d < num_nodes; ++d) {
      if (s == d) {
        t.bw_[s][d] = 36.2;
        t.lat_[s][d] = 81.0;
      } else if (blade_of(s) == blade_of(d)) {
        t.bw_[s][d] = 9.5;
        t.lat_[s][d] = 400.0;
      } else {
        uint32_t h = std::min<uint32_t>(4, bhops[blade_of(s)][blade_of(d)]);
        static constexpr double kBw[5] = {0, 7.5, 7.5, 7.1, 6.5};
        static constexpr double kLat[5] = {0, 510.0, 630.0, 750.0, 870.0};
        t.bw_[s][d] = kBw[h];
        t.lat_[s][d] = kLat[h];
      }
    }
  }
  return t;
}

Topology Topology::DetectHost() {
  namespace fs = std::filesystem;
  const fs::path base("/sys/devices/system/node");
  std::vector<uint32_t> cpus_per_node;
  std::error_code ec;
  for (uint32_t n = 0;; ++n) {
    fs::path node_dir = base / ("node" + std::to_string(n));
    if (!fs::exists(node_dir, ec)) break;
    uint32_t cpus = 0;
    for (const auto& entry : fs::directory_iterator(node_dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("cpu", 0) == 0 &&
          name.find_first_not_of("0123456789", 3) == std::string::npos) {
        ++cpus;
      }
    }
    cpus_per_node.push_back(cpus);
  }
  if (cpus_per_node.empty()) {
    uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    return Flat(1, hw);
  }
  uint32_t num_nodes = static_cast<uint32_t>(cpus_per_node.size());
  uint32_t cores = std::max(1u, *std::min_element(cpus_per_node.begin(),
                                                  cpus_per_node.end()));
  if (num_nodes == 1) return Flat(1, cores);
  // Multi-node host without calibration data: assume full connectivity with
  // generic 1-hop penalties (QPI-class numbers).
  Topology t;
  t.name_ = "host-" + std::to_string(num_nodes) + "n";
  t.num_nodes_ = num_nodes;
  t.cores_per_node_ = cores;
  for (NodeId a = 0; a < num_nodes; ++a)
    for (NodeId b = a + 1; b < num_nodes; ++b)
      t.links_.push_back({a, b, 10.0, "host-link"});
  t.bw_.assign(num_nodes, std::vector<double>(num_nodes, 10.0));
  t.lat_.assign(num_nodes, std::vector<double>(num_nodes, 190.0));
  for (NodeId n = 0; n < num_nodes; ++n) {
    t.bw_[n][n] = 25.0;
    t.lat_[n][n] = 120.0;
  }
  t.ComputeRoutes();
  return t;
}

std::string Topology::ToString() const {
  // Group node pairs into distance classes, print like Table 2.
  std::map<std::tuple<uint32_t, double, double>, uint32_t> classes;
  for (NodeId s = 0; s < num_nodes_; ++s)
    for (NodeId d = 0; d < num_nodes_; ++d)
      ++classes[{hops_[s][d], bw_[s][d], lat_[s][d]}];
  std::ostringstream os;
  os << name_ << ": " << num_nodes_ << " nodes x " << cores_per_node_
     << " cores, " << links_.size() << " links, diameter " << Diameter()
     << "\n";
  os << "  hops  bandwidth(GB/s)  latency(ns)  node-pairs\n";
  for (const auto& [key, count] : classes) {
    auto [hops, bw, lat] = key;
    os << "  " << hops << "     " << bw << "             " << lat << "        "
       << count << "\n";
  }
  return os.str();
}

}  // namespace eris::numa
