#include "numa/memory_manager.h"

#include <cstdlib>
#include <mutex>
#include <unordered_map>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "common/bit_util.h"
#include "common/logging.h"

namespace eris::numa {

namespace {
std::atomic<uint64_t> g_next_manager_id{1};
}  // namespace

// Per-thread cache for one (thread, manager) pair. Keyed by the manager's
// unique id — not its pointer — so that a manager destroyed and another
// allocated at the same address can never resurrect stale cached blocks.
struct NodeMemoryManager::ThreadCache {
  std::vector<void*> blocks[kNumClasses];
};

// Owns all per-thread caches of this thread across managers. Entries are
// heap-allocated ThreadCache objects keyed by manager id; they are freed when
// the thread exits.
struct NodeMemoryManager::ThreadCacheRegistry {
  std::unordered_map<uint64_t, ThreadCache> caches;
  static ThreadCacheRegistry& Get() {
    static thread_local ThreadCacheRegistry registry;
    return registry;
  }
};

NodeMemoryManager::NodeMemoryManager(NodeId node)
    : node_(node),
      manager_id_(g_next_manager_id.fetch_add(1, std::memory_order_relaxed)) {}

NodeMemoryManager::~NodeMemoryManager() {
  for (void* chunk : arena_chunks_) std::free(chunk);
}

int NodeMemoryManager::SizeClassOf(size_t bytes) {
  if (bytes > kMaxClassBytes) return -1;
  size_t rounded = std::max(kMinClassBytes, NextPowerOfTwo(bytes));
  return Log2Floor(rounded) - Log2Floor(kMinClassBytes);
}

NodeMemoryManager::ThreadCache& NodeMemoryManager::GetThreadCache() {
  return ThreadCacheRegistry::Get().caches[manager_id_];
}

void* NodeMemoryManager::Allocate(size_t bytes) {
  if (bytes == 0) bytes = 1;
  allocations_.fetch_add(1, std::memory_order_relaxed);
  bytes_allocated_.fetch_add(bytes, std::memory_order_relaxed);
  int cls = SizeClassOf(bytes);
  if (cls < 0) {
    void* ptr = std::malloc(bytes);
    ERIS_CHECK(ptr != nullptr) << "large allocation of " << bytes << " failed";
    bytes_reserved_.fetch_add(bytes, std::memory_order_relaxed);
    return ptr;
  }
  ThreadCache& cache = GetThreadCache();
  std::vector<void*>& list = cache.blocks[cls];
  if (list.empty()) {
    void* batch[kThreadCacheBatch];
    size_t got = CentralRefill(cls, batch, kThreadCacheBatch);
    list.insert(list.end(), batch, batch + got);
    thread_cache_bytes_.fetch_add(got * ClassBytes(cls),
                                  std::memory_order_relaxed);
  }
  void* ptr = list.back();
  list.pop_back();
  thread_cache_bytes_.fetch_sub(ClassBytes(cls), std::memory_order_relaxed);
  return ptr;
}

void NodeMemoryManager::Free(void* ptr, size_t bytes) {
  if (ptr == nullptr) return;
  if (bytes == 0) bytes = 1;
  // Release pairs with the acquire load in stats(): a snapshot that sees this
  // increment also sees the matching Allocate increment (see MemoryStats).
  bytes_freed_.fetch_add(bytes, std::memory_order_release);
  int cls = SizeClassOf(bytes);
  if (cls < 0) {
    bytes_reserved_.fetch_sub(bytes, std::memory_order_relaxed);
    std::free(ptr);
    return;
  }
  ThreadCache& cache = GetThreadCache();
  std::vector<void*>& list = cache.blocks[cls];
  list.push_back(ptr);
  thread_cache_bytes_.fetch_add(ClassBytes(cls), std::memory_order_relaxed);
  if (list.size() > 2 * kThreadCacheBatch) {
    // Flush the older half back to the central list.
    CentralRelease(cls, list.data(), kThreadCacheBatch);
    list.erase(list.begin(),
               list.begin() + static_cast<ptrdiff_t>(kThreadCacheBatch));
    thread_cache_bytes_.fetch_sub(kThreadCacheBatch * ClassBytes(cls),
                                  std::memory_order_relaxed);
  }
}

size_t NodeMemoryManager::CentralRefill(int cls, void** out, size_t count) {
  central_refills_.fetch_add(1, std::memory_order_relaxed);
  CentralClass& central = central_[cls];
  size_t got = 0;
  {
    std::lock_guard<SpinLock> guard(central.lock);
    while (got < count && !central.free_blocks.empty()) {
      out[got++] = central.free_blocks.back();
      central.free_blocks.pop_back();
    }
  }
  if (got == count) return got;
  // Carve the remainder from the bump arena.
  const size_t block_bytes = ClassBytes(cls);
  std::lock_guard<SpinLock> guard(arena_lock_);
  while (got < count) {
    if (arena_pos_ + block_bytes > arena_end_) {
      void* chunk = AllocateArenaChunk();
      arena_chunks_.push_back(chunk);
      arena_pos_ = static_cast<char*>(chunk);
      arena_end_ = arena_pos_ + kArenaChunkBytes;
      bytes_reserved_.fetch_add(kArenaChunkBytes, std::memory_order_relaxed);
    }
    out[got++] = arena_pos_;
    arena_pos_ += block_bytes;
  }
  return got;
}

void* NodeMemoryManager::AllocateArenaChunk() {
  // A 2 MiB-aligned reservation lets the kernel back the whole chunk with one
  // transparent huge page; an unaligned chunk spans three page-table regions
  // and THP coverage becomes probabilistic. aligned_alloc memory is freed
  // with std::free, same as the fallback path.
  constexpr size_t kHugePageBytes = 2 * 1024 * 1024;
  static_assert(kArenaChunkBytes % kHugePageBytes == 0,
                "arena chunks must be a multiple of the huge-page size");
  void* chunk = std::aligned_alloc(kHugePageBytes, kArenaChunkBytes);
  bool thp = false;
  if (chunk != nullptr) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
    thp = madvise(chunk, kArenaChunkBytes, MADV_HUGEPAGE) == 0;
#endif
  } else {
    // Graceful fallback: plain allocation, no THP, chunk still usable.
    chunk = std::malloc(kArenaChunkBytes);
  }
  ERIS_CHECK(chunk != nullptr) << "arena chunk allocation failed";
  if (thp) {
    huge_page_bytes_.fetch_add(kArenaChunkBytes, std::memory_order_relaxed);
  } else {
    thp_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  return chunk;
}

void NodeMemoryManager::CentralRelease(int cls, void** blocks, size_t count) {
  CentralClass& central = central_[cls];
  std::lock_guard<SpinLock> guard(central.lock);
  central.free_blocks.insert(central.free_blocks.end(), blocks,
                             blocks + count);
}

void NodeMemoryManager::FlushThisThreadCache() {
  auto& caches = ThreadCacheRegistry::Get().caches;
  auto it = caches.find(manager_id_);
  if (it == caches.end()) return;
  for (int cls = 0; cls < static_cast<int>(kNumClasses); ++cls) {
    std::vector<void*>& list = it->second.blocks[cls];
    if (!list.empty()) {
      CentralRelease(cls, list.data(), list.size());
      thread_cache_bytes_.fetch_sub(list.size() * ClassBytes(cls),
                                    std::memory_order_relaxed);
    }
    list.clear();
  }
  caches.erase(it);
}

MemoryStats NodeMemoryManager::stats() const {
  MemoryStats s;
  // Read bytes_freed FIRST with acquire: every free that this snapshot
  // counts had its matching allocate increment sequenced before the
  // release-RMW in Free (the block's pointer handoff is a happens-before
  // edge), so reading allocated afterwards can only see a value >= the sum
  // of those matching allocations. bytes_in_use() therefore never
  // underflows, even mid thread-cache flush. See MemoryStats.
  s.bytes_freed = bytes_freed_.load(std::memory_order_acquire);
  s.bytes_allocated = bytes_allocated_.load(std::memory_order_relaxed);
  s.bytes_reserved = bytes_reserved_.load(std::memory_order_relaxed);
  s.allocations = allocations_.load(std::memory_order_relaxed);
  s.central_refills = central_refills_.load(std::memory_order_relaxed);
  s.thread_cache_bytes = thread_cache_bytes_.load(std::memory_order_relaxed);
  s.huge_page_bytes = huge_page_bytes_.load(std::memory_order_relaxed);
  s.thp_failures = thp_failures_.load(std::memory_order_relaxed);
  return s;
}

MemoryPool::MemoryPool(uint32_t num_nodes) {
  ERIS_CHECK_GE(num_nodes, 1u);
  managers_.reserve(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n)
    managers_.push_back(std::make_unique<NodeMemoryManager>(n));
}

MemoryStats MemoryPool::TotalStats() const {
  MemoryStats total;
  for (const auto& m : managers_) {
    MemoryStats s = m->stats();
    total.bytes_reserved += s.bytes_reserved;
    total.bytes_allocated += s.bytes_allocated;
    total.bytes_freed += s.bytes_freed;
    total.allocations += s.allocations;
    total.central_refills += s.central_refills;
    total.thread_cache_bytes += s.thread_cache_bytes;
    total.huge_page_bytes += s.huge_page_bytes;
    total.thp_failures += s.thp_failures;
  }
  return total;
}

}  // namespace eris::numa
