// Per-multiprocessor memory management with thread-local caching.
//
// ERIS deploys one memory manager per NUMA node (and data object) instead of
// a global allocator: this keeps AEU allocations node-local, removes
// cross-node allocator contention, and lets the load balancer hand partition
// memory between AEUs of the same node without copying ("link" transfer).
//
// On the reproduction host physical placement cannot be controlled (single
// node, no libnuma); the manager still provides the contention-domain
// separation and tags every manager with its home node so the eris::sim cost
// model can attribute accesses.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/spinlock.h"
#include "numa/types.h"

namespace eris::numa {

/// Allocation statistics of one node-local manager.
///
/// Consistency story: every counter is an independent atomic, but stats()
/// snapshots them in a fixed order — bytes_freed first with acquire, then
/// bytes_allocated — and Free publishes its increment with release. Since a
/// block must be allocated before it can be freed (the pointer handoff is a
/// happens-before edge), any freed-bytes increment observed by the snapshot
/// implies its matching allocated-bytes increment is also visible, so
/// bytes_in_use() can never transiently underflow even when the reader races
/// a thread-cache flush on another core. The remaining counters are
/// monotonic diagnostics and stay relaxed.
struct MemoryStats {
  uint64_t bytes_reserved = 0;   ///< arena bytes obtained from the OS
  uint64_t bytes_allocated = 0;  ///< cumulative bytes handed to callers
  uint64_t bytes_freed = 0;      ///< cumulative bytes returned
  uint64_t allocations = 0;
  uint64_t central_refills = 0;  ///< thread-cache misses into the central lists
  /// Class-rounded bytes currently parked in thread caches (refilled but not
  /// handed out, or freed but not yet flushed to the central lists). Without
  /// this term the gap between bytes_reserved and bytes_in_use() silently
  /// mixes cache-resident blocks with genuinely unused arena space.
  uint64_t thread_cache_bytes = 0;
  /// Arena bytes whose 2 MiB chunks were successfully marked for transparent
  /// huge pages (MADV_HUGEPAGE on an aligned reservation).
  uint64_t huge_page_bytes = 0;
  /// Chunks that fell back to the plain allocator (aligned reservation or
  /// madvise failed). The chunk is still usable, just not THP-backed.
  uint64_t thp_failures = 0;
  /// Bytes held by callers. Blocks resident in thread caches are already
  /// counted as freed (they are reusable), so they never inflate this value;
  /// they are reported separately in thread_cache_bytes.
  uint64_t bytes_in_use() const { return bytes_allocated - bytes_freed; }
  /// Arena bytes reserved but neither handed to callers nor parked in a
  /// thread cache: unfilled bump space plus central free-list residency.
  uint64_t fragmentation_bytes() const {
    uint64_t used = bytes_in_use() + thread_cache_bytes;
    return bytes_reserved > used ? bytes_reserved - used : 0;
  }
};

/// \brief Node-local size-class allocator with per-thread caches.
///
/// Small blocks (<= 64 KiB) are served from power-of-two size classes backed
/// by bump-allocated arena chunks; each thread keeps a private cache per
/// size class and refills/flushes in batches from the central free lists, so
/// steady-state allocation takes no lock. Large blocks fall through to the
/// system allocator. All memory is released when the manager is destroyed;
/// callers must not touch blocks afterwards.
class NodeMemoryManager {
 public:
  static constexpr size_t kMinClassBytes = 16;
  static constexpr size_t kMaxClassBytes = 64 * 1024;
  static constexpr size_t kNumClasses = 13;  // 16B .. 64KiB (powers of two)
  static constexpr size_t kThreadCacheBatch = 64;
  static constexpr size_t kArenaChunkBytes = 2 * 1024 * 1024;

  explicit NodeMemoryManager(NodeId node);
  ~NodeMemoryManager();

  NodeMemoryManager(const NodeMemoryManager&) = delete;
  NodeMemoryManager& operator=(const NodeMemoryManager&) = delete;

  /// Allocates `bytes` (never null; aborts on OOM). 16-byte aligned.
  void* Allocate(size_t bytes);
  /// Returns a block previously obtained with Allocate(bytes).
  void Free(void* ptr, size_t bytes);

  /// Typed convenience helpers.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* mem = Allocate(sizeof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }
  template <typename T>
  void Delete(T* ptr) {
    if (ptr == nullptr) return;
    ptr->~T();
    Free(ptr, sizeof(T));
  }

  NodeId node() const { return node_; }
  MemoryStats stats() const;

  /// Drains the calling thread's cache back to the central lists (used by
  /// AEUs on shutdown and by tests).
  void FlushThisThreadCache();

 private:
  struct CentralClass {
    SpinLock lock;
    std::vector<void*> free_blocks;
  };
  struct ThreadCache;
  struct ThreadCacheRegistry;

  static int SizeClassOf(size_t bytes);
  static size_t ClassBytes(int cls) { return kMinClassBytes << cls; }

  /// Grabs up to `count` blocks of class `cls` from the central list,
  /// carving new arena chunks when empty.
  size_t CentralRefill(int cls, void** out, size_t count);
  void CentralRelease(int cls, void** blocks, size_t count);

  ThreadCache& GetThreadCache();

  const NodeId node_;
  const uint64_t manager_id_;

  CentralClass central_[kNumClasses];

  SpinLock arena_lock_;
  std::vector<void*> arena_chunks_;
  char* arena_pos_ = nullptr;
  char* arena_end_ = nullptr;

  /// Allocates one kArenaChunkBytes chunk, 2 MiB-aligned and madvised for
  /// transparent huge pages when the platform supports it; falls back to a
  /// plain allocation (and counts a thp_failure) otherwise.
  void* AllocateArenaChunk();

  std::atomic<uint64_t> bytes_reserved_{0};
  std::atomic<uint64_t> bytes_allocated_{0};
  std::atomic<uint64_t> bytes_freed_{0};
  std::atomic<uint64_t> allocations_{0};
  std::atomic<uint64_t> central_refills_{0};
  std::atomic<uint64_t> thread_cache_bytes_{0};
  std::atomic<uint64_t> huge_page_bytes_{0};
  std::atomic<uint64_t> thp_failures_{0};
};

/// \brief One memory manager per node of a topology.
///
/// Provides the per-node managers plus the allocation placement policies the
/// evaluation compares: node-local (ERIS), interleaved (round-robin over all
/// nodes, the classic NUMA mitigation) and single-node.
class MemoryPool {
 public:
  explicit MemoryPool(uint32_t num_nodes);

  NodeMemoryManager& manager(NodeId node) { return *managers_[node]; }
  const NodeMemoryManager& manager(NodeId node) const {
    return *managers_[node];
  }
  uint32_t num_nodes() const { return static_cast<uint32_t>(managers_.size()); }

  /// Next node in an interleaved (round-robin) placement sequence.
  NodeId NextInterleavedNode() {
    return static_cast<NodeId>(interleave_counter_.fetch_add(
               1, std::memory_order_relaxed) %
           managers_.size());
  }

  /// Aggregate stats over all nodes.
  MemoryStats TotalStats() const;

 private:
  std::vector<std::unique_ptr<NodeMemoryManager>> managers_;
  std::atomic<uint64_t> interleave_counter_{0};
};

}  // namespace eris::numa
