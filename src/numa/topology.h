// NUMA topology model: nodes, cores, interconnect links, and the measured
// per-distance bandwidth/latency characteristics that drive both the engine's
// placement decisions and the eris::sim cost model.
//
// Presets encode the three evaluation machines of the ERIS paper (Table 1/2):
// a fully connected 4-node Intel box, an 8-node AMD box with full/split
// HyperTransport links, and a 64-node SGI UV 2000 (blades of 2 nodes, an
// enhanced-hypercube of blades per IRU, 4 IRUs). On machines we cannot model
// exactly, distance classes are assigned per hop count computed by BFS over
// the explicit link graph; the class->(bandwidth, latency) mapping uses the
// paper's measured values.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "numa/types.h"

namespace eris::numa {

/// One physical interconnect link between two nodes.
struct LinkSpec {
  NodeId a = 0;
  NodeId b = 0;
  /// Per-direction transmit bandwidth in GB/s.
  double bandwidth_gbps = 0.0;
  /// Human-readable class, e.g. "QPI", "HT full", "NUMALink6".
  std::string label;
};

/// \brief Immutable description of a NUMA machine.
///
/// Provides node/core counts, per-node-pair read bandwidth (GB/s) and read
/// latency (ns), hop counts, and the link route between any two nodes (used
/// by sim::LinkCounters to attribute traffic to physical links).
class Topology {
 public:
  /// Uniform-memory machine: every access is "local". Used for the
  /// NUMA-agnostic baseline and for hosts without NUMA.
  static Topology Flat(uint32_t num_nodes, uint32_t cores_per_node);

  /// 4x Intel Xeon E7-4860, fully connected via QPI (Table 1/2).
  static Topology IntelMachine();

  /// 4-socket AMD Opteron 6274 with dual-node packages: 8 nodes connected by
  /// full and split HyperTransport links, including 2-hop routes (Table 1/2).
  static Topology AmdMachine();

  /// SGI UV 2000: blades of 2 nodes behind a HARP hub, 8 blades per IRU in a
  /// 3D enhanced hypercube, blades also linked to their counterparts in two
  /// other IRUs. `num_nodes` may be reduced (e.g. for scalability sweeps);
  /// it is rounded up to a multiple of 2 and capped at 64.
  static Topology SgiMachine(uint32_t num_nodes = 64);

  /// Reads the host topology from /sys/devices/system/node; falls back to
  /// Flat(1, hardware_concurrency) when unavailable.
  static Topology DetectHost();

  const std::string& name() const { return name_; }
  uint32_t num_nodes() const { return num_nodes_; }
  uint32_t cores_per_node() const { return cores_per_node_; }
  uint32_t total_cores() const { return num_nodes_ * cores_per_node_; }

  NodeId NodeOfCore(CoreId core) const { return core / cores_per_node_; }
  CoreId FirstCoreOfNode(NodeId node) const { return node * cores_per_node_; }

  /// Read latency in nanoseconds for a core on `src` touching memory homed
  /// at `dst`.
  double LatencyNs(NodeId src, NodeId dst) const { return lat_[src][dst]; }

  /// Achievable read bandwidth in GB/s for node `src` streaming from `dst`
  /// (all cores of src issuing concurrent sequential reads, per Table 2).
  double BandwidthGbps(NodeId src, NodeId dst) const { return bw_[src][dst]; }

  /// Local-memory bandwidth of one node.
  double LocalBandwidthGbps(NodeId node) const { return bw_[node][node]; }

  /// Number of interconnect hops between nodes (0 = local).
  uint32_t Hops(NodeId src, NodeId dst) const { return hops_[src][dst]; }

  /// Maximum hop count in the machine.
  uint32_t Diameter() const;

  size_t num_links() const { return links_.size(); }
  const LinkSpec& link(LinkId id) const { return links_[id]; }

  /// Primary route: ordered list of links a memory access from `src` to
  /// `dst` traverses (empty for local access).
  const std::vector<LinkId>& Route(NodeId src, NodeId dst) const {
    return routes_[src][dst].front();
  }

  /// All computed equal-hop routes between the pair (at least one; up to
  /// three). Traffic accounting spreads bytes across them, modeling the
  /// adaptive routing of real interconnects.
  const std::vector<std::vector<LinkId>>& Routes(NodeId src,
                                                 NodeId dst) const {
    return routes_[src][dst];
  }

  /// Sum of local bandwidth over all nodes — the machine's aggregate
  /// memory-controller capability.
  double AggregateLocalBandwidthGbps() const;

  /// Multi-line summary (distance classes with bandwidth/latency), in the
  /// style of Table 2 of the paper.
  std::string ToString() const;

 private:
  Topology() = default;

  /// Computes hops_ and routes_ via BFS over links_; entries where no path
  /// exists get hop count 0 for src==dst and are an error otherwise.
  void ComputeRoutes();

  std::string name_;
  uint32_t num_nodes_ = 0;
  uint32_t cores_per_node_ = 0;
  std::vector<LinkSpec> links_;
  std::vector<std::vector<double>> bw_;    // [src][dst] GB/s
  std::vector<std::vector<double>> lat_;   // [src][dst] ns
  std::vector<std::vector<uint32_t>> hops_;
  // routes_[src][dst]: deduplicated equal-hop paths (>= 1 entry per pair).
  std::vector<std::vector<std::vector<std::vector<LinkId>>>> routes_;
};

}  // namespace eris::numa
