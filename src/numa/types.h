// Fundamental identifier types for the NUMA layer.
#pragma once

#include <cstdint>

namespace eris::numa {

/// Index of a multiprocessor (a NUMA node) within a Topology.
using NodeId = uint32_t;
/// Global core index within a Topology (node-major: node * cores_per_node + i).
using CoreId = uint32_t;
/// Index of an interconnect link within a Topology.
using LinkId = uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};

}  // namespace eris::numa
