// Star-schema analytics with the query layer (the paper's future-work
// query processing framework on top of the ERIS storage primitives).
//
//   $ ./star_schema
//
// Schema: a `customers` dimension (index: customer id -> region code) and
// an `orders` fact column (customer foreign keys). The session runs:
//   Q1  SELECT count(*), sum(fk), min(fk), max(fk) FROM orders
//   Q2  SELECT fk INTO hot_orders FROM orders WHERE fk BETWEEN a AND b
//       (the intermediate result is materialized NUMA-locally)
//   Q3  SELECT count(*), sum(region) FROM hot_orders JOIN customers
//       ON customers.id = hot_orders.fk
//       (AEUs route lookup batches to one another during the join)
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "query/query.h"

using eris::Xoshiro256;
using eris::core::Engine;
using eris::core::EngineOptions;
using eris::query::AggregateResult;
using eris::query::Filter;
using eris::query::JoinResult;
using eris::query::QueryRunner;
using eris::routing::KeyValue;
using eris::storage::Key;
using eris::storage::Value;

int main() {
  EngineOptions options;
  options.topology = eris::numa::Topology::DetectHost();
  Engine engine(options);
  const Key num_customers = 1u << 18;
  auto customers = engine.CreateIndex("customers", num_customers,
                                      {.prefix_bits = 8, .key_bits = 18});
  auto orders = engine.CreateColumn("orders");
  engine.Start();
  QueryRunner runner(&engine);

  // Load the dimension: region = id % 7.
  {
    std::vector<KeyValue> kvs;
    for (Key id = 0; id < num_customers;) {
      kvs.clear();
      for (int i = 0; i < 65536 && id < num_customers; ++i, ++id) {
        kvs.push_back({id, id % 7});
      }
      runner.session().Insert(customers, kvs);
    }
  }
  // Load 1M facts referencing random customers.
  {
    Xoshiro256 rng(2026);
    std::vector<Value> fks(1u << 20);
    for (auto& fk : fks) fk = rng.NextBounded(num_customers);
    runner.session().Append(orders, fks);
  }

  // Q1: full aggregation.
  AggregateResult q1 = runner.Aggregate(orders);
  std::printf("Q1: %llu orders, avg fk %.1f, fk range [%llu, %llu]\n",
              static_cast<unsigned long long>(q1.rows), q1.avg,
              static_cast<unsigned long long>(q1.min),
              static_cast<unsigned long long>(q1.max));

  // Q2: selection with NUMA-local materialization.
  Filter hot{num_customers / 4, num_customers / 2 - 1};
  auto q2 = runner.MaterializeFilter(orders, hot, "hot_orders");
  if (!q2.ok()) {
    std::printf("Q2 failed: %s\n", q2.status().ToString().c_str());
    return 1;
  }
  std::printf("Q2: materialized %llu hot orders into object %u\n",
              static_cast<unsigned long long>(q2->rows), q2->object);

  // Q3: join the intermediate against the dimension.
  JoinResult q3 = runner.IndexJoin(q2->object, Filter{}, customers);
  std::printf(
      "Q3: %llu probes, %llu joined (%.1f%%), sum(region) = %llu\n",
      static_cast<unsigned long long>(q3.probes),
      static_cast<unsigned long long>(q3.matches),
      100.0 * q3.matches / std::max<uint64_t>(1, q3.probes),
      static_cast<unsigned long long>(q3.matched_sum));

  engine.Stop();
  return 0;
}
