// Interactive ERIS shell: poke at a live engine from a terminal.
//
//   $ ./eris_cli
//   eris> create-index kv 1048576
//   eris> insert kv 42 420
//   eris> lookup kv 42
//   eris> create-column facts
//   eris> append facts 1 2 3 4 5
//   eris> scan facts
//   eris> agg facts 2 4
//   eris> rebalance kv
//   eris> stats
//   eris> help
//
// Also reads commands from stdin non-interactively:
//   $ printf 'create-column c\nappend c 1 2 3\nscan c\n' | ./eris_cli
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "query/query.h"

using eris::core::BalanceAlgorithm;
using eris::core::Engine;
using eris::core::EngineOptions;
using eris::core::LoadBalancerConfig;
using eris::core::ScanResult;
using eris::routing::KeyValue;
using eris::storage::Key;
using eris::storage::ObjectId;
using eris::storage::Value;

namespace {

struct Shell {
  Engine engine;
  std::unique_ptr<Engine::Session> session;
  std::unique_ptr<eris::query::QueryRunner> runner;
  std::map<std::string, ObjectId> objects;

  explicit Shell(EngineOptions opts) : engine(std::move(opts)) {
    engine.Start();
    session = engine.CreateSession();
    runner = std::make_unique<eris::query::QueryRunner>(&engine);
  }

  bool Resolve(const std::string& name, ObjectId* id) {
    auto it = objects.find(name);
    if (it == objects.end()) {
      std::printf("unknown object '%s'\n", name.c_str());
      return false;
    }
    *id = it->second;
    return true;
  }
};

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  create-index <name> <domain>    range-partitioned prefix-tree "
      "index over [0, domain)\n"
      "  create-column <name>            physically partitioned append "
      "column\n"
      "  insert <index> <key> <value>    routed insert\n"
      "  lookup <index> <key>...         point lookups\n"
      "  erase <index> <key>...          routed erase\n"
      "  range <index> <lo> <hi>         index range scan [lo, hi)\n"
      "  append <column> <v>...          routed appends\n"
      "  scan <column> [lo hi]           multicast column scan\n"
      "  agg <column> [lo hi]            rows/sum/min/max/avg\n"
      "  filter <column> <lo> <hi> <out> materialize matches into a new "
      "column\n"
      "  join <column> <index>           index-nested-loop join\n"
      "  rebalance <object>              one One-Shot balancing cycle\n"
      "  stats                           engine report\n"
      "  help | quit\n");
}

bool HandleLine(Shell& shell, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') return true;
  auto need = [&](auto& v) -> bool {
    if (in >> v) return true;
    std::printf("missing argument; try 'help'\n");
    return false;
  };
  if (cmd == "quit" || cmd == "exit") return false;
  if (cmd == "help") {
    PrintHelp();
  } else if (cmd == "create-index") {
    std::string name;
    Key domain;
    if (!need(name) || !need(domain)) return true;
    uint32_t bits = 1;
    while ((Key{1} << bits) < domain && bits < 63) ++bits;
    shell.objects[name] = shell.engine.CreateIndex(
        name, domain, {.prefix_bits = 8, .key_bits = bits});
    std::printf("index '%s' = object %u\n", name.c_str(),
                shell.objects[name]);
  } else if (cmd == "create-column") {
    std::string name;
    if (!need(name)) return true;
    shell.objects[name] = shell.engine.CreateColumn(name);
    std::printf("column '%s' = object %u\n", name.c_str(),
                shell.objects[name]);
  } else if (cmd == "insert") {
    std::string name;
    KeyValue kv;
    ObjectId id;
    if (!need(name) || !need(kv.key) || !need(kv.value)) return true;
    if (!shell.Resolve(name, &id)) return true;
    uint64_t n = shell.session->Insert(id, {&kv, 1});
    std::printf("%s\n", n == 1 ? "inserted" : "key exists");
  } else if (cmd == "lookup") {
    std::string name;
    ObjectId id;
    if (!need(name) || !shell.Resolve(name, &id)) return true;
    std::vector<Key> keys;
    Key k;
    while (in >> k) keys.push_back(k);
    auto values = shell.session->LookupValues(id, keys);
    for (size_t i = 0; i < keys.size(); ++i) {
      if (values[i].has_value()) {
        std::printf("  %llu -> %llu\n",
                    static_cast<unsigned long long>(keys[i]),
                    static_cast<unsigned long long>(*values[i]));
      } else {
        std::printf("  %llu -> <missing>\n",
                    static_cast<unsigned long long>(keys[i]));
      }
    }
  } else if (cmd == "erase") {
    std::string name;
    ObjectId id;
    if (!need(name) || !shell.Resolve(name, &id)) return true;
    std::vector<Key> keys;
    Key k;
    while (in >> k) keys.push_back(k);
    std::printf("erased %llu\n", static_cast<unsigned long long>(
                                     shell.session->Erase(id, keys)));
  } else if (cmd == "range") {
    std::string name;
    Key lo, hi;
    ObjectId id;
    if (!need(name) || !need(lo) || !need(hi)) return true;
    if (!shell.Resolve(name, &id)) return true;
    ScanResult r = shell.session->ScanIndexRange(id, lo, hi);
    std::printf("rows %llu, value sum %llu\n",
                static_cast<unsigned long long>(r.rows),
                static_cast<unsigned long long>(r.sum));
  } else if (cmd == "append") {
    std::string name;
    ObjectId id;
    if (!need(name) || !shell.Resolve(name, &id)) return true;
    std::vector<Value> values;
    Value v;
    while (in >> v) values.push_back(v);
    shell.session->Append(id, values);
    std::printf("appended %zu\n", values.size());
  } else if (cmd == "scan" || cmd == "agg") {
    std::string name;
    ObjectId id;
    if (!need(name) || !shell.Resolve(name, &id)) return true;
    Value lo = 0;
    Value hi = ~Value{0};
    in >> lo >> hi;
    if (cmd == "scan") {
      ScanResult r = shell.session->ScanColumn(id, lo, hi);
      std::printf("rows %llu, sum %llu\n",
                  static_cast<unsigned long long>(r.rows),
                  static_cast<unsigned long long>(r.sum));
    } else {
      auto a = shell.runner->Aggregate(id, {lo, hi});
      std::printf("rows %llu, sum %llu, min %llu, max %llu, avg %.2f\n",
                  static_cast<unsigned long long>(a.rows),
                  static_cast<unsigned long long>(a.sum),
                  static_cast<unsigned long long>(a.min),
                  static_cast<unsigned long long>(a.max), a.avg);
    }
  } else if (cmd == "filter") {
    std::string name, out;
    Value lo, hi;
    ObjectId id;
    if (!need(name) || !need(lo) || !need(hi) || !need(out)) return true;
    if (!shell.Resolve(name, &id)) return true;
    auto r = shell.runner->MaterializeFilter(id, {lo, hi}, out);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
    } else {
      shell.objects[out] = r->object;
      std::printf("materialized %llu rows into '%s'\n",
                  static_cast<unsigned long long>(r->rows), out.c_str());
    }
  } else if (cmd == "join") {
    std::string probe_name, index_name;
    ObjectId probe, index;
    if (!need(probe_name) || !need(index_name)) return true;
    if (!shell.Resolve(probe_name, &probe) ||
        !shell.Resolve(index_name, &index)) {
      return true;
    }
    auto r = shell.runner->IndexJoin(probe, {}, index);
    std::printf("probes %llu, matches %llu, matched value sum %llu\n",
                static_cast<unsigned long long>(r.probes),
                static_cast<unsigned long long>(r.matches),
                static_cast<unsigned long long>(r.matched_sum));
  } else if (cmd == "rebalance") {
    std::string name;
    ObjectId id;
    if (!need(name) || !shell.Resolve(name, &id)) return true;
    LoadBalancerConfig cfg;
    cfg.algorithm = BalanceAlgorithm::kOneShot;
    cfg.trigger_cv = 0.0;
    cfg.min_total_accesses = 1;
    std::printf("%s\n", shell.engine.RebalanceObject(id, cfg)
                            ? "rebalanced"
                            : "no imbalance / not balanceable");
  } else if (cmd == "stats") {
    std::printf("%s", shell.engine.StatsReport().c_str());
  } else {
    std::printf("unknown command '%s'; try 'help'\n", cmd.c_str());
  }
  return true;
}

}  // namespace

int main() {
  EngineOptions options;
  options.topology = eris::numa::Topology::DetectHost();
  Shell shell(std::move(options));
  std::printf("ERIS shell — %u AEUs on %s. Type 'help'.\n",
              shell.engine.num_aeus(),
              shell.engine.topology().name().c_str());
  std::string line;
  while (true) {
    std::printf("eris> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!HandleLine(shell, line)) break;
  }
  shell.engine.Stop();
  std::printf("bye\n");
  return 0;
}
