// Analytical scenario: a fact column with concurrent analytical scans and
// a trickle of upserts — the workload class ERIS targets.
//
//   $ ./analytics_scan
//
// Shows scan sharing (several client threads fire full scans; the AEUs
// coalesce scan commands that arrive in the same loop pass into one shared
// physical pass under MVCC) and snapshot isolation (scans never block on
// the concurrent appends and see a consistent prefix).
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/engine.h"

using eris::core::Engine;
using eris::core::EngineOptions;
using eris::core::ScanResult;
using eris::storage::Value;

int main() {
  EngineOptions options;
  options.topology = eris::numa::Topology::DetectHost();
  Engine engine(options);
  auto sales = engine.CreateColumn("sales");
  engine.Start();

  // Load 2M sale amounts.
  {
    auto loader = engine.CreateSession();
    std::vector<Value> values;
    values.reserve(1u << 16);
    for (uint64_t i = 0; i < (2u << 20);) {
      values.clear();
      for (int j = 0; j < (1 << 16); ++j, ++i) values.push_back(i % 5000);
      loader->Append(sales, values);
    }
  }

  // 3 analysts scanning concurrently + 1 writer appending.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scans_done{0};
  std::vector<std::thread> analysts;
  for (int a = 0; a < 3; ++a) {
    analysts.emplace_back([&engine, sales, &stop, &scans_done, a] {
      auto session = engine.CreateSession();
      uint64_t last_rows = 0;
      while (!stop.load()) {
        ScanResult r = session->ScanColumn(sales, 1000, 3999);
        // Snapshot isolation: row counts only ever grow (appends), and a
        // scan always sees a consistent prefix.
        if (r.rows < last_rows) {
          std::printf("analyst %d: snapshot went backwards!\n", a);
        }
        last_rows = r.rows;
        scans_done.fetch_add(1);
      }
    });
  }
  std::thread writer([&engine, sales, &stop] {
    auto session = engine.CreateSession();
    std::vector<Value> batch(1024);
    while (!stop.load()) {
      for (auto& v : batch) v = 2500;
      session->Append(sales, batch);
    }
  });

  std::this_thread::sleep_for(std::chrono::seconds(2));
  stop.store(true);
  for (auto& t : analysts) t.join();
  writer.join();

  uint64_t coalesced = 0;
  for (eris::routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    coalesced += engine.aeu(a).loop_stats().scans_coalesced;
  }
  auto session = engine.CreateSession();
  ScanResult final_scan = session->ScanColumn(sales);
  std::printf(
      "completed %llu concurrent scans over %llu rows; %llu scan commands "
      "answered by a shared pass (scan sharing)\n",
      static_cast<unsigned long long>(scans_done.load()),
      static_cast<unsigned long long>(final_scan.rows),
      static_cast<unsigned long long>(coalesced));
  engine.Stop();
  return 0;
}
