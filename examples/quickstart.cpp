// Quickstart: create an ERIS engine, store some data, query it.
//
//   $ ./quickstart
//
// Demonstrates the three storage operations the engine provides — scan,
// lookup, and insert/upsert — through the public Session API, on a real
// threaded engine sized for the host.
#include <cstdio>
#include <vector>

#include "core/engine.h"

using eris::core::Engine;
using eris::core::EngineOptions;
using eris::core::ScanResult;
using eris::routing::KeyValue;
using eris::storage::Key;
using eris::storage::Value;

int main() {
  // Configure the engine for this host: one AEU (worker) per core, each
  // pinned and exclusively owning a slice of every data object.
  EngineOptions options;
  options.topology = eris::numa::Topology::DetectHost();
  Engine engine(options);

  // A key-value index over the key domain [0, 1M), stored as an
  // order-preserving prefix tree, range-partitioned over the AEUs.
  auto orders = engine.CreateIndex("orders", 1u << 20,
                                   {.prefix_bits = 8, .key_bits = 20});
  // An append-only column, physically partitioned (scanned in full).
  auto amounts = engine.CreateColumn("amounts");

  engine.Start();
  auto session = engine.CreateSession();

  // Insert/upsert: key-value batches are split by the routing layer and
  // delivered to the owning AEUs' incoming buffers.
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 100000; ++k) kvs.push_back({k, k * 10});
  uint64_t inserted = session->Insert(orders, kvs);
  std::printf("inserted %llu orders\n",
              static_cast<unsigned long long>(inserted));

  // Point lookups.
  std::vector<Key> probe{42, 77777, 999999};
  auto values = session->LookupValues(orders, probe);
  for (size_t i = 0; i < probe.size(); ++i) {
    if (values[i].has_value()) {
      std::printf("orders[%llu] = %llu\n",
                  static_cast<unsigned long long>(probe[i]),
                  static_cast<unsigned long long>(*values[i]));
    } else {
      std::printf("orders[%llu] = <not found>\n",
                  static_cast<unsigned long long>(probe[i]));
    }
  }

  // Index range scan (order preserving: counts keys in [1000, 2000)).
  ScanResult range = session->ScanIndexRange(orders, 1000, 2000);
  std::printf("keys in [1000, 2000): %llu rows, value sum %llu\n",
              static_cast<unsigned long long>(range.rows),
              static_cast<unsigned long long>(range.sum));

  // Column append + full scan with a value filter. Scans are multicast to
  // every AEU holding a partition and can coalesce (scan sharing).
  std::vector<Value> batch;
  for (Value v = 1; v <= 50000; ++v) batch.push_back(v % 1000);
  session->Append(amounts, batch);
  ScanResult scan = session->ScanColumn(amounts, 100, 199);
  std::printf("amounts in [100, 199]: %llu rows, sum %llu\n",
              static_cast<unsigned long long>(scan.rows),
              static_cast<unsigned long long>(scan.sum));

  engine.Stop();
  std::printf("done.\n");
  return 0;
}
