// Dynamic workload example: a hot key range that keeps moving, with the
// NUMA-aware load balancer adapting the partitioning.
//
//   $ ./dynamic_rebalance
//
// Prints the partition boundaries and per-AEU load before and after each
// balancing cycle, showing the Moving-Average algorithm homing in on the
// hot range and the link/copy transfer mechanisms moving the data.
#include <cstdio>
#include <vector>

#include "core/engine.h"

using eris::core::BalanceAlgorithm;
using eris::core::Engine;
using eris::core::EngineOptions;
using eris::core::LoadBalancerConfig;
using eris::routing::KeyValue;
using eris::storage::Key;

namespace {

void PrintPartitioning(Engine& engine, eris::storage::ObjectId idx) {
  auto entries = engine.router().range_table(idx)->Snapshot();
  std::printf("  partitioning:");
  Key lo = 0;
  for (const auto& e : entries) {
    Key hi_display = e.hi == eris::storage::kMaxKey ? 0 : e.hi;
    uint64_t tuples = engine.aeu(e.owner).partition(idx)->tuple_count();
    std::printf(" AEU%u[%llu..%s, %llu keys]", e.owner,
                static_cast<unsigned long long>(lo),
                e.hi == eris::storage::kMaxKey
                    ? "end"
                    : std::to_string(hi_display).c_str(),
                static_cast<unsigned long long>(tuples));
    lo = e.hi;
  }
  std::printf("\n");
}

}  // namespace

int main() {
  EngineOptions options;
  // A small fixed layout keeps the printout readable: 2 nodes x 2 cores.
  options.topology = eris::numa::Topology::Flat(2, 2);
  Engine engine(options);
  const Key n = 1u << 20;
  auto idx = engine.CreateIndex("kv", n, {.prefix_bits = 8, .key_bits = 20});
  engine.Start();
  auto session = engine.CreateSession();

  std::printf("loading %llu keys...\n", static_cast<unsigned long long>(n));
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < n;) {
    kvs.clear();
    for (int i = 0; i < 65536 && k < n; ++i, ++k) kvs.push_back({k, k});
    session->Insert(idx, kvs);
  }
  PrintPartitioning(engine, idx);

  LoadBalancerConfig cfg;
  cfg.algorithm = BalanceAlgorithm::kMovingAverage;
  cfg.ma_window = 2;
  cfg.trigger_cv = 0.1;
  cfg.min_total_accesses = 1;

  // The hot window moves across the domain; the balancer follows.
  for (int phase = 0; phase < 4; ++phase) {
    Key hot_lo = static_cast<Key>(phase) * (n / 8);
    Key hot_hi = hot_lo + n / 4;
    std::printf("\nphase %d: hammering keys [%llu, %llu)\n", phase,
                static_cast<unsigned long long>(hot_lo),
                static_cast<unsigned long long>(hot_hi));
    std::vector<Key> probes;
    for (Key k = hot_lo; k < hot_hi; k += 4) probes.push_back(k);
    for (int round = 0; round < 3; ++round) {
      uint64_t hits = session->Lookup(idx, probes);
      if (hits != probes.size()) std::printf("  lost keys!\n");
      bool rebalanced = engine.RebalanceObject(idx, cfg);
      std::printf("  round %d: %llu lookups, rebalanced=%s\n", round,
                  static_cast<unsigned long long>(hits),
                  rebalanced ? "yes" : "no");
    }
    PrintPartitioning(engine, idx);
  }

  uint64_t links = 0;
  uint64_t copies = 0;
  for (eris::routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    links += engine.aeu(a).loop_stats().link_transfers;
    copies += engine.aeu(a).loop_stats().copy_transfers;
  }
  std::printf(
      "\ntransfers executed: %llu link (same node, structural splice), %llu "
      "copy (cross node,\nflatten->stream->rebuild)\n",
      static_cast<unsigned long long>(links),
      static_cast<unsigned long long>(copies));
  engine.Stop();
  return 0;
}
