// NUMA topology explorer: prints the machine presets and runs a small
// simulated-time what-if — "how would my lookup workload behave on the
// paper's machines?" — without needing the hardware.
//
//   $ ./numa_explorer
#include <cstdio>
#include <vector>

#include "bench_util/drivers.h"
#include "bench_util/report.h"

using namespace eris;
using namespace eris::bench;

int main() {
  std::printf("Host topology: %s\n",
              numa::Topology::DetectHost().ToString().c_str());
  for (const MachineSpec& machine : AllMachines()) {
    std::printf("%s\n", machine.topology.ToString().c_str());
  }

  std::printf(
      "What-if: 256M-key index, random lookups, on each paper machine\n"
      "(simulated time; ERIS vs the NUMA-agnostic shared index):\n\n");
  Table table({"machine", "ERIS Mops/s", "shared Mops/s", "gain"});
  for (const MachineSpec& machine : AllMachines()) {
    PointOpsConfig cfg(machine);
    cfg.num_keys = 256ull << 20;
    cfg.ops = 1u << 16;
    cfg.scale = 512;
    RunResult eris = RunErisPointOps(cfg);
    RunResult shared = RunSharedPointOps(cfg);
    table.Row({machine.name, Fmt("%.0f", eris.mops()),
               Fmt("%.0f", shared.mops()),
               Fmt("%.2fx", eris.mops() / shared.mops())});
  }
  table.Print();
  return 0;
}
